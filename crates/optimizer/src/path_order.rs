//! Algorithm 8.1 — the optimum execution order of path expressions.
//!
//! Given m path expressions in an AND-term with traversal costs `F_i` and
//! selectivities `s_i`, the objective is
//!
//! ```text
//! f = F_{i[1]} + s_{i[1]}·F_{i[2]} + s_{i[1]}·s_{i[2]}·F_{i[3]} + …
//! ```
//!
//! The paper's Appendix proves that sorting by ascending `F_i/(1−s_i)`
//! minimizes `f`; [`order_paths`] implements exactly that, and
//! [`optimal_order_exhaustive`] provides the brute-force baseline the
//! property tests and the X4 ablation bench compare against.

/// One path expression's cost/selectivity pair (a PathSelInfo row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// `F_i` — forward traversal cost.
    pub cost: f64,
    /// `s_i` — selectivity.
    pub selectivity: f64,
}

impl PathCost {
    /// The ranking key `F/(1−s)`; `s = 1` ranks `+∞` (a non-selective path
    /// can never pay for itself and goes last).
    pub fn rank(&self) -> f64 {
        let denom = 1.0 - self.selectivity;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            self.cost / denom
        }
    }
}

/// The objective function `f` for a given execution order.
pub fn objective(paths: &[PathCost], order: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut shrink = 1.0;
    for &i in order {
        total += shrink * paths[i].cost;
        shrink *= paths[i].selectivity;
    }
    total
}

/// Algorithm 8.1: indices sorted by ascending `F_i/(1−s_i)`.
/// Ties keep input order (stable), making plans deterministic.
pub fn order_paths(paths: &[PathCost]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..paths.len()).collect();
    idx.sort_by(|&a, &b| {
        paths[a]
            .rank()
            .partial_cmp(&paths[b].rank())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Brute force: the true minimum over all m! orders (m ≤ 10 guarded).
pub fn optimal_order_exhaustive(paths: &[PathCost]) -> (Vec<usize>, f64) {
    assert!(paths.len() <= 10, "exhaustive search is factorial");
    let mut best_order: Vec<usize> = (0..paths.len()).collect();
    let mut best = objective(paths, &best_order);
    let mut order: Vec<usize> = best_order.clone();
    permute(&mut order, 0, &mut |candidate| {
        let f = objective(paths, candidate);
        if f < best {
            best = f;
            best_order = candidate.to_vec();
        }
    });
    (best_order, best)
}

fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_path_base_case_of_the_lemma() {
        // F1 + s1·F2 < F2 + s2·F1  ⇔  F1/(1−s1) < F2/(1−s2).
        let a = PathCost {
            cost: 100.0,
            selectivity: 0.1,
        };
        let b = PathCost {
            cost: 50.0,
            selectivity: 0.9,
        };
        // rank(a) = 111.1, rank(b) = 500 → a first.
        assert_eq!(order_paths(&[a, b]), vec![0, 1]);
        let f_ab = objective(&[a, b], &[0, 1]);
        let f_ba = objective(&[a, b], &[1, 0]);
        assert!(f_ab < f_ba, "{f_ab} vs {f_ba}");
    }

    #[test]
    fn paper_table_16_ordering() {
        // P1: F=771.825, s=6.25e-2 → rank 823.28;
        // P2: F=520.825, s=5.00e-5 → rank 520.85. Order: P2 then P1.
        let p1 = PathCost {
            cost: 771.825,
            selectivity: 6.25e-2,
        };
        let p2 = PathCost {
            cost: 520.825,
            selectivity: 5.00e-5,
        };
        assert!((p1.rank() - 823.28).abs() < 0.01, "{}", p1.rank());
        assert!((p2.rank() - 520.85).abs() < 0.05, "{}", p2.rank());
        assert_eq!(order_paths(&[p1, p2]), vec![1, 0], "P2 before P1");
    }

    #[test]
    fn objective_accumulates_selectivities() {
        let paths = [
            PathCost {
                cost: 10.0,
                selectivity: 0.5,
            },
            PathCost {
                cost: 20.0,
                selectivity: 0.25,
            },
        ];
        // order [0,1]: 10 + 0.5·20 = 20; order [1,0]: 20 + 0.25·10 = 22.5
        assert_eq!(objective(&paths, &[0, 1]), 20.0);
        assert_eq!(objective(&paths, &[1, 0]), 22.5);
    }

    #[test]
    fn selectivity_one_goes_last() {
        let paths = [
            PathCost {
                cost: 1.0,
                selectivity: 1.0,
            },
            PathCost {
                cost: 1000.0,
                selectivity: 0.01,
            },
        ];
        assert_eq!(order_paths(&paths), vec![1, 0]);
    }

    #[test]
    fn rank_rule_matches_exhaustive_on_grids() {
        // Sweep a deterministic grid of (F, s) triples and check the
        // Appendix lemma: the rank order attains the exhaustive minimum.
        let costs = [1.0, 10.0, 100.0, 1000.0];
        let sels = [0.001, 0.1, 0.5, 0.9, 0.999];
        let mut cases = 0;
        for &f1 in &costs {
            for &f2 in &costs {
                for &f3 in &costs {
                    for &s1 in &sels {
                        for &s2 in &sels {
                            for &s3 in &sels {
                                let paths = [
                                    PathCost {
                                        cost: f1,
                                        selectivity: s1,
                                    },
                                    PathCost {
                                        cost: f2,
                                        selectivity: s2,
                                    },
                                    PathCost {
                                        cost: f3,
                                        selectivity: s3,
                                    },
                                ];
                                let ranked = order_paths(&paths);
                                let (_, best) = optimal_order_exhaustive(&paths);
                                let got = objective(&paths, &ranked);
                                assert!(
                                    (got - best).abs() <= 1e-9 * best.max(1.0),
                                    "rank order {got} vs optimal {best} for {paths:?}"
                                );
                                cases += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(cases, 4 * 4 * 4 * 5 * 5 * 5);
    }

    #[test]
    fn pseudorandom_inputs_match_exhaustive_for_m_up_to_6() {
        let mut state = 42u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for m in 2..=6 {
            for _ in 0..30 {
                let paths: Vec<PathCost> = (0..m)
                    .map(|_| PathCost {
                        cost: 1.0 + rnd() * 999.0,
                        selectivity: rnd().clamp(0.0001, 0.9999),
                    })
                    .collect();
                let ranked = order_paths(&paths);
                let (_, best) = optimal_order_exhaustive(&paths);
                let got = objective(&paths, &ranked);
                assert!(
                    (got - best).abs() <= 1e-9 * best.max(1.0),
                    "m={m}: {got} vs {best}"
                );
            }
        }
    }

    #[test]
    fn stable_for_equal_ranks() {
        let paths = [
            PathCost {
                cost: 10.0,
                selectivity: 0.5,
            },
            PathCost {
                cost: 10.0,
                selectivity: 0.5,
            },
            PathCost {
                cost: 5.0,
                selectivity: 0.75,
            },
        ];
        // ranks: 20, 20, 20 → input order preserved.
        assert_eq!(order_paths(&paths), vec![0, 1, 2]);
    }
}
