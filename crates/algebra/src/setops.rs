//! `DupElim`, `Union`, `Intersection`, `Difference` — with the return-type
//! rules of Tables 3 and 4.

use std::collections::HashSet;

use mood_catalog::Catalog;
use mood_datamodel::deep_eq;
use mood_storage::exec::{run_chunked, ExecutionConfig};
use mood_storage::Oid;

use crate::collection::{Collection, Obj};
use crate::error::{AlgebraError, Result};

/// `DupElim(arg)` — Table 3:
/// * Set → not applicable (a set has no duplicates);
/// * List → list of ordered distinct object identifiers;
/// * Extent → extent of distinct objects *by deep equality*.
pub fn dup_elim(catalog: &Catalog, arg: &Collection) -> Result<Collection> {
    match arg {
        Collection::Set(_) => Err(AlgebraError::NotApplicable {
            operator: "DupElim",
            detail: "sets have no duplicates (Table 3: not applicable)".into(),
        }),
        Collection::List(oids) => {
            let mut sorted: Vec<Oid> = oids.clone();
            sorted.sort();
            sorted.dedup();
            Ok(Collection::List(sorted))
        }
        Collection::Extent(objs) => {
            // Deep equality is expensive; prune with a cheap shallow pass
            // (identical OIDs) before the pairwise deep check.
            let mut kept: Vec<Obj> = Vec::new();
            let mut seen_oids: HashSet<Oid> = HashSet::new();
            'outer: for o in objs {
                if let Some(oid) = o.oid {
                    if !seen_oids.insert(oid) {
                        continue; // literally the same object
                    }
                }
                for k in &kept {
                    if deep_eq(&o.value, &k.value, catalog) {
                        continue 'outer;
                    }
                }
                kept.push(o.clone());
            }
            Ok(Collection::Extent(kept))
        }
        Collection::NamedObject(_) | Collection::Empty => Ok(arg.clone()),
    }
}

/// Chunk-parallel [`dup_elim`].
///
/// * List: chunks are sorted and deduplicated on worker threads, then
///   merged — the merged result is the same sorted distinct list.
/// * Extent: each chunk removes its *local* duplicates on a worker thread
///   (deep equality, first occurrence kept); a sequential cross-chunk pass
///   then re-checks the survivors in input order against everything kept so
///   far. First occurrences are decided in input order in both passes, so
///   the result is identical to the sequential operator.
pub fn dup_elim_par(catalog: &Catalog, arg: &Collection, exec: ExecutionConfig) -> Result<Collection> {
    if !exec.is_parallel() {
        return dup_elim(catalog, arg);
    }
    match arg {
        Collection::List(oids) => {
            let chunks: Vec<Vec<Oid>> = run_chunked(exec.parallelism, oids, |_, chunk| {
                let mut sorted = chunk.to_vec();
                sorted.sort();
                sorted.dedup();
                Ok::<_, AlgebraError>(vec![sorted])
            })?;
            let mut merged: Vec<Oid> = Vec::with_capacity(oids.len());
            for run in chunks {
                merged.extend(run);
            }
            merged.sort();
            merged.dedup();
            Ok(Collection::List(merged))
        }
        Collection::Extent(objs) => {
            let survivors: Vec<Obj> = run_chunked(exec.parallelism, objs, |_, chunk| {
                let mut kept: Vec<Obj> = Vec::new();
                let mut seen_oids: HashSet<Oid> = HashSet::new();
                'outer: for o in chunk {
                    if let Some(oid) = o.oid {
                        if !seen_oids.insert(oid) {
                            continue;
                        }
                    }
                    for k in &kept {
                        if deep_eq(&o.value, &k.value, catalog) {
                            continue 'outer;
                        }
                    }
                    kept.push(o.clone());
                }
                Ok::<_, AlgebraError>(kept)
            })?;
            // Cross-chunk pass: survivors arrive in input order; duplicates
            // spanning chunk boundaries are caught here.
            let mut kept: Vec<Obj> = Vec::new();
            let mut seen_oids: HashSet<Oid> = HashSet::new();
            'outer: for o in survivors {
                if let Some(oid) = o.oid {
                    if !seen_oids.insert(oid) {
                        continue;
                    }
                }
                for k in &kept {
                    if deep_eq(&o.value, &k.value, catalog) {
                        continue 'outer;
                    }
                }
                kept.push(o);
            }
            Ok(Collection::Extent(kept))
        }
        other => dup_elim(catalog, other),
    }
}

fn oids_of(arg: &Collection, operator: &'static str) -> Result<Vec<Oid>> {
    match arg {
        Collection::Set(v) | Collection::List(v) => Ok(v.clone()),
        other => Err(AlgebraError::NotApplicable {
            operator,
            detail: format!(
                "arguments must be sets or lists (Table 4), got {:?}",
                other.kind()
            ),
        }),
    }
}

fn both_lists(a: &Collection, b: &Collection) -> bool {
    matches!((a, b), (Collection::List(_), Collection::List(_)))
}

/// `Union(arg1, arg2)` — Table 4. Two lists concatenate ("union
/// corresponds to array concatenation"); any set operand makes the result a
/// set.
pub fn union(a: &Collection, b: &Collection) -> Result<Collection> {
    let (xa, xb) = (oids_of(a, "Union")?, oids_of(b, "Union")?);
    if both_lists(a, b) {
        let mut out = xa;
        out.extend(xb);
        Ok(Collection::List(out))
    } else {
        let mut out = xa;
        out.extend(xb);
        Ok(Collection::set_from(out))
    }
}

/// `Intersection(arg1, arg2)` — Table 4.
pub fn intersection(a: &Collection, b: &Collection) -> Result<Collection> {
    let (xa, xb) = (oids_of(a, "Intersection")?, oids_of(b, "Intersection")?);
    let set_b: HashSet<Oid> = xb.into_iter().collect();
    let common: Vec<Oid> = xa.into_iter().filter(|o| set_b.contains(o)).collect();
    if both_lists(a, b) {
        // List ∩ List keeps the left list's order, deduplicated.
        let mut seen = HashSet::new();
        Ok(Collection::List(
            common.into_iter().filter(|o| seen.insert(*o)).collect(),
        ))
    } else {
        Ok(Collection::set_from(common))
    }
}

/// `Difference(arg1, arg2)` — Table 4: objects in `arg1` but not `arg2`.
pub fn difference(a: &Collection, b: &Collection) -> Result<Collection> {
    let (xa, xb) = (oids_of(a, "Difference")?, oids_of(b, "Difference")?);
    let set_b: HashSet<Oid> = xb.into_iter().collect();
    let rest: Vec<Oid> = xa.into_iter().filter(|o| !set_b.contains(o)).collect();
    if both_lists(a, b) {
        Ok(Collection::List(rest))
    } else {
        Ok(Collection::set_from(rest))
    }
}

/// Chunk-parallel [`union`]. Union is pure concatenation (plus the shared
/// `set_from` normalization when either operand is a set), so there is no
/// per-element work to fan out — it delegates, and exists so every set
/// operator has a uniform parallel entry point.
pub fn union_par(a: &Collection, b: &Collection, _exec: ExecutionConfig) -> Result<Collection> {
    union(a, b)
}

/// Chunk-parallel [`intersection`]: the right operand's membership set is
/// built once, then the left operand is filtered in contiguous chunks on
/// worker threads and concatenated in input order (the order-sensitive
/// List∩List dedup stays sequential over that concatenation).
pub fn intersection_par(
    a: &Collection,
    b: &Collection,
    exec: ExecutionConfig,
) -> Result<Collection> {
    if !exec.is_parallel() {
        return intersection(a, b);
    }
    let (xa, xb) = (oids_of(a, "Intersection")?, oids_of(b, "Intersection")?);
    let set_b: HashSet<Oid> = xb.into_iter().collect();
    let common = run_chunked(exec.parallelism, &xa, |_, chunk| {
        Ok::<_, AlgebraError>(chunk.iter().copied().filter(|o| set_b.contains(o)).collect())
    })?;
    if both_lists(a, b) {
        let mut seen = HashSet::new();
        Ok(Collection::List(
            common.into_iter().filter(|o| seen.insert(*o)).collect(),
        ))
    } else {
        Ok(Collection::set_from(common))
    }
}

/// Chunk-parallel [`difference`]: same strategy as [`intersection_par`]
/// with the membership test negated.
pub fn difference_par(a: &Collection, b: &Collection, exec: ExecutionConfig) -> Result<Collection> {
    if !exec.is_parallel() {
        return difference(a, b);
    }
    let (xa, xb) = (oids_of(a, "Difference")?, oids_of(b, "Difference")?);
    let set_b: HashSet<Oid> = xb.into_iter().collect();
    let rest = run_chunked(exec.parallelism, &xa, |_, chunk| {
        Ok::<_, AlgebraError>(
            chunk
                .iter()
                .copied()
                .filter(|o| !set_b.contains(o))
                .collect(),
        )
    })?;
    if both_lists(a, b) {
        Ok(Collection::List(rest))
    } else {
        Ok(Collection::set_from(rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_catalog::ClassBuilder;
    use mood_datamodel::{TypeDescriptor, Value};
    use mood_storage::StorageManager;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("Point")
                .attribute("x", TypeDescriptor::integer())
                .attribute("y", TypeDescriptor::integer()),
        )
        .unwrap();
        cat
    }

    fn pt(cat: &Catalog, x: i32, y: i32) -> Oid {
        cat.new_object(
            "Point",
            Value::tuple(vec![("x", Value::Integer(x)), ("y", Value::Integer(y))]),
        )
        .unwrap()
    }

    #[test]
    fn dupelim_rejects_sets() {
        let cat = catalog();
        let err = dup_elim(&cat, &Collection::Set(vec![])).unwrap_err();
        assert!(matches!(err, AlgebraError::NotApplicable { .. }));
    }

    #[test]
    fn dupelim_on_list_sorts_and_dedups() {
        let cat = catalog();
        let (a, b) = (pt(&cat, 1, 1), pt(&cat, 2, 2));
        let list = Collection::List(vec![b, a, b, a, b]);
        let out = dup_elim(&cat, &list).unwrap();
        assert_eq!(out, Collection::List(vec![a, b]), "ordered distinct oids");
    }

    #[test]
    fn dupelim_on_extent_uses_deep_equality() {
        let cat = catalog();
        // Two distinct objects with equal values, one different.
        let a = pt(&cat, 1, 1);
        let b = pt(&cat, 1, 1);
        let c = pt(&cat, 9, 9);
        let extent = Collection::Extent(vec![
            crate::ops::deref(&cat, a).unwrap(),
            crate::ops::deref(&cat, b).unwrap(),
            crate::ops::deref(&cat, c).unwrap(),
        ]);
        let out = dup_elim(&cat, &extent).unwrap();
        assert_eq!(out.len(), 2, "deep-equal objects collapse");
    }

    #[test]
    fn union_set_semantics() {
        let cat = catalog();
        let (a, b, c) = (pt(&cat, 1, 0), pt(&cat, 2, 0), pt(&cat, 3, 0));
        let s = Collection::set_from(vec![a, b]);
        let l = Collection::List(vec![b, c]);
        let out = union(&s, &l).unwrap();
        assert_eq!(out, Collection::set_from(vec![a, b, c]));
    }

    #[test]
    fn union_of_lists_concatenates() {
        let cat = catalog();
        let (a, b) = (pt(&cat, 1, 0), pt(&cat, 2, 0));
        let l1 = Collection::List(vec![a, b]);
        let l2 = Collection::List(vec![b, a]);
        let out = union(&l1, &l2).unwrap();
        assert_eq!(
            out,
            Collection::List(vec![a, b, b, a]),
            "array concatenation"
        );
    }

    #[test]
    fn intersection_and_difference() {
        let cat = catalog();
        let (a, b, c) = (pt(&cat, 1, 0), pt(&cat, 2, 0), pt(&cat, 3, 0));
        let s1 = Collection::set_from(vec![a, b]);
        let s2 = Collection::set_from(vec![b, c]);
        assert_eq!(
            intersection(&s1, &s2).unwrap(),
            Collection::set_from(vec![b])
        );
        assert_eq!(difference(&s1, &s2).unwrap(), Collection::set_from(vec![a]));
        assert_eq!(difference(&s2, &s1).unwrap(), Collection::set_from(vec![c]));
    }

    #[test]
    fn list_list_ops_stay_lists() {
        let cat = catalog();
        let (a, b, c) = (pt(&cat, 1, 0), pt(&cat, 2, 0), pt(&cat, 3, 0));
        let l1 = Collection::List(vec![c, a, b]);
        let l2 = Collection::List(vec![b, c]);
        assert_eq!(
            intersection(&l1, &l2).unwrap(),
            Collection::List(vec![c, b])
        );
        assert_eq!(difference(&l1, &l2).unwrap(), Collection::List(vec![a]));
    }

    #[test]
    fn extent_operands_rejected() {
        let cat = catalog();
        let _ = cat;
        let e = Collection::Extent(vec![]);
        let s = Collection::Set(vec![]);
        assert!(union(&e, &s).is_err());
        assert!(intersection(&s, &e).is_err());
        assert!(difference(&e, &e).is_err());
    }
}
