//! The query manager — "a query editor with facilities for accessing
//! previous queries in a session" (Section 9.3), speaking to the kernel
//! exclusively through SQL (Section 9.4's protocol).

use std::sync::Arc;

use mood_catalog::Catalog;
use mood_funcman::FunctionManager;
use mood_sql::{Answer, Cursor, Session, SqlError};

/// One history entry.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    pub sql: String,
    pub ok: bool,
    /// Row count for queries, affected count for DML, 0 for DDL.
    pub rows: usize,
}

/// An interactive query-manager session with history.
pub struct QueryManager {
    session: Session,
    history: Vec<HistoryEntry>,
}

impl QueryManager {
    pub fn new(catalog: Arc<Catalog>, funcman: Arc<FunctionManager>) -> QueryManager {
        QueryManager {
            session: Session::new(catalog, funcman),
            history: Vec::new(),
        }
    }

    /// Run a statement, recording it in the history.
    pub fn run(&mut self, sql: &str) -> Result<Answer, SqlError> {
        let result = self.session.execute(sql);
        let (ok, rows) = match &result {
            Ok(Answer::Rows(r)) => (true, r.len()),
            Ok(Answer::Done { affected }) => (true, *affected),
            Ok(_) => (true, 0),
            Err(_) => (false, 0),
        };
        self.history.push(HistoryEntry {
            sql: sql.to_string(),
            ok,
            rows,
        });
        result
    }

    /// Run a query through a cursor (the object-browser path).
    pub fn open_cursor(&mut self, sql: &str) -> Result<Cursor, SqlError> {
        let r = self.run(sql)?;
        match r {
            Answer::Rows(rows) => Ok(Cursor::new(rows)),
            other => Err(SqlError::Exec(format!("not a query: {other:?}"))),
        }
    }

    /// Previous queries, newest last.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// Re-run the history entry at `index` (the "accessing previous
    /// queries" facility).
    pub fn rerun(&mut self, index: usize) -> Result<Answer, SqlError> {
        let sql = self
            .history
            .get(index)
            .map(|h| h.sql.clone())
            .ok_or_else(|| SqlError::Exec(format!("no history entry {index}")))?;
        self.run(&sql)
    }

    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> QueryManager {
        let sm = Arc::new(mood_storage::StorageManager::in_memory());
        let catalog = Arc::new(Catalog::create(sm).unwrap());
        let funcman = Arc::new(FunctionManager::new(catalog.clone()));
        QueryManager::new(catalog, funcman)
    }

    #[test]
    fn history_records_successes_and_failures() {
        let mut qm = manager();
        qm.run("CREATE CLASS Employee TUPLE (name String, age Integer)")
            .unwrap();
        qm.run("new Employee <'Asuman', 50>").unwrap();
        let _ = qm.run("SELECT nonsense");
        qm.run("SELECT e.name FROM Employee e").unwrap();
        let h = qm.history();
        assert_eq!(h.len(), 4);
        assert!(h[0].ok && h[1].ok && !h[2].ok && h[3].ok);
        assert_eq!(h[3].rows, 1);
    }

    #[test]
    fn rerun_previous_query() {
        let mut qm = manager();
        qm.run("CREATE CLASS Employee TUPLE (name String, age Integer)")
            .unwrap();
        qm.run("new Employee <'Cetin', 40>").unwrap();
        qm.run("SELECT e FROM Employee e").unwrap();
        // Add a row, then re-run query #2 (0-based): result grows.
        qm.run("new Employee <'Budak', 30>").unwrap();
        let Answer::Rows(r) = qm.rerun(2).unwrap() else {
            panic!()
        };
        assert_eq!(r.len(), 2);
        assert!(qm.rerun(99).is_err());
    }

    #[test]
    fn cursor_walks_results_both_ways() {
        let mut qm = manager();
        qm.run("CREATE CLASS Employee TUPLE (name String, age Integer)")
            .unwrap();
        for (n, a) in [("a", 1), ("b", 2), ("c", 3)] {
            qm.run(&format!("new Employee <'{n}', {a}>")).unwrap();
        }
        let mut cur = qm
            .open_cursor("SELECT e.name FROM Employee e ORDER BY e.age")
            .unwrap();
        assert_eq!(cur.len(), 3);
        cur.next();
        cur.next();
        let back = cur.prev().unwrap()[0].to_string();
        assert_eq!(back, "'a'");
    }
}
