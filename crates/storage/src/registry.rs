//! Process-wide engine metrics registry.
//!
//! One aggregation point over the counters the storage layer already keeps
//! scattered across its components: the shared [`DiskMetrics`] page/buffer
//! counters, the WAL's append/force/recovery counts, the lock manager's
//! wait statistics, and per-operator execution totals reported by the query
//! layer. `SHOW METRICS` and `Mood::engine_metrics()` render a snapshot of
//! this registry; because [`DiskMetrics`] already attributes every access to
//! its recording thread, the totals here are exact under parallel execution
//! (totals are always the sum of the per-thread counts).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::PoolHealth;
use crate::disk::RetryStats;
use crate::lock::LockManager;
use crate::metrics::{DiskMetrics, MetricsSnapshot};
use crate::wal::{Wal, WalStats};

/// Lifetime execution totals for one named operator (SELECT, JOIN(HJ), …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorTotals {
    /// Times the operator ran.
    pub invocations: u64,
    /// Rows the operator produced, summed over invocations.
    pub rows: u64,
    /// Page accesses attributed to the operator (its own work, excluding
    /// child operators), summed over invocations.
    pub pages: u64,
    /// Wall-clock nanoseconds attributed to the operator.
    pub nanos: u64,
}

/// Plan-cache lifetime counters. `hits + misses` equals the number of
/// cacheable-statement lookups; `invalidations` counts the subset of misses
/// caused by an epoch bump evicting a stale entry (so it never exceeds
/// `misses`), and `evictions` counts capacity-driven LRU removals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

/// Aggregates engine-wide counters; owned by the [`StorageManager`] and
/// shared with the query layer.
///
/// [`StorageManager`]: crate::StorageManager
pub struct MetricsRegistry {
    metrics: DiskMetrics,
    wal: Arc<Wal>,
    locks: Arc<LockManager>,
    /// The buffer pool's contention counter (nanoseconds blocked on shard
    /// locks / checked-out pages) — shared with the pool that bumps it.
    buffer_wait_ns: Arc<AtomicU64>,
    /// Degraded flag + page-repair counter; attached by the storage
    /// manager (absent on bare registries, which then report healthy).
    health: Mutex<Option<Arc<PoolHealth>>>,
    /// RetryDisk counters, when the disk stack has a retry layer.
    retry: Mutex<Option<Arc<RetryStats>>>,
    operators: Mutex<BTreeMap<String, OperatorTotals>>,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    plan_cache_invalidations: AtomicU64,
    /// Nanoseconds spent lowering predicates/projections to register
    /// programs and binding/optimizing cacheable plans.
    compile_ns: AtomicU64,
}

/// Point-in-time view of every engine counter, as rendered by
/// `SHOW METRICS`.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Page/buffer counters (process totals across all threads).
    pub disk: MetricsSnapshot,
    /// WAL appends / forces / recovered page images.
    pub wal: WalStats,
    /// Nanoseconds threads spent blocked on buffer-pool shard locks and
    /// condvars (pool contention, not transaction serialization).
    pub buffer_wait_ns: u64,
    /// Times a lock acquire had to block.
    pub lock_waits: u64,
    /// Lock acquires that gave up at the deadlock timeout.
    pub lock_timeouts: u64,
    /// Waits-for cycles detected (each aborts its youngest participant).
    pub lock_deadlocks: u64,
    /// Pages reconstructed from the WAL after a checksum mismatch.
    pub page_repairs: u64,
    /// Individual I/O retry attempts (RetryDisk). Counter discipline:
    /// every give-up is preceded by a full backoff schedule of retries,
    /// so `io_gave_up <= io_retries` whenever the schedule is non-empty.
    pub io_retries: u64,
    /// Operations that exhausted the whole backoff schedule.
    pub io_gave_up: u64,
    /// Is the engine in read-only degraded mode?
    pub degraded: bool,
    /// Why the engine degraded (empty while healthy).
    pub degraded_reason: String,
    /// Plan-cache hit/miss/eviction/invalidation totals.
    pub plan_cache: PlanCacheStats,
    /// Nanoseconds spent compiling cacheable plans and register programs.
    pub compile_ns: u64,
    /// Per-operator execution totals, sorted by operator name.
    pub operators: Vec<(String, OperatorTotals)>,
}

impl EngineMetrics {
    /// Buffer-pool hit ratio in `[0, 1]`; 0 when the pool is untouched.
    pub fn buffer_hit_ratio(&self) -> f64 {
        let total = self.disk.buffer_hits + self.disk.buffer_misses;
        if total == 0 {
            0.0
        } else {
            self.disk.buffer_hits as f64 / total as f64
        }
    }

    /// Flatten into `(metric, value)` rows for tabular display. Stable
    /// order: disk, buffer, wal, locks, then operators alphabetically.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = vec![
            ("disk.seq_pages", self.disk.seq_pages.to_string()),
            ("disk.rnd_pages", self.disk.rnd_pages.to_string()),
            ("disk.idx_pages", self.disk.idx_pages.to_string()),
            ("disk.writes", self.disk.writes.to_string()),
            ("buffer.hits", self.disk.buffer_hits.to_string()),
            ("buffer.misses", self.disk.buffer_misses.to_string()),
            ("buffer.evictions", self.disk.buffer_evictions.to_string()),
            ("buffer.hit_ratio", format!("{:.4}", self.buffer_hit_ratio())),
            ("buffer.wait_ns", self.buffer_wait_ns.to_string()),
            ("wal.appends", self.wal.appends.to_string()),
            ("wal.fsyncs", self.wal.forces.to_string()),
            ("wal.recovered_pages", self.wal.recovered.to_string()),
            ("lock.waits", self.lock_waits.to_string()),
            ("lock.timeouts", self.lock_timeouts.to_string()),
            ("lock.deadlocks", self.lock_deadlocks.to_string()),
            ("page.repairs", self.page_repairs.to_string()),
            ("io.retries", self.io_retries.to_string()),
            ("io.gave_up", self.io_gave_up.to_string()),
            (
                "storage.degraded",
                if self.degraded {
                    format!("yes ({})", self.degraded_reason)
                } else {
                    "no".to_string()
                },
            ),
            ("plan_cache.hits", self.plan_cache.hits.to_string()),
            ("plan_cache.misses", self.plan_cache.misses.to_string()),
            ("plan_cache.evictions", self.plan_cache.evictions.to_string()),
            (
                "plan_cache.invalidations",
                self.plan_cache.invalidations.to_string(),
            ),
            ("compile.ns", self.compile_ns.to_string()),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        for (name, t) in &self.operators {
            out.push((
                format!("operator.{name}"),
                format!(
                    "calls={} rows={} pages={} time={:.3}ms",
                    t.invocations,
                    t.rows,
                    t.pages,
                    t.nanos as f64 / 1e6
                ),
            ));
        }
        out
    }
}

impl MetricsRegistry {
    pub fn new(
        metrics: DiskMetrics,
        wal: Arc<Wal>,
        locks: Arc<LockManager>,
        buffer_wait_ns: Arc<AtomicU64>,
    ) -> Self {
        MetricsRegistry {
            metrics,
            wal,
            locks,
            buffer_wait_ns,
            health: Mutex::new(None),
            retry: Mutex::new(None),
            operators: Mutex::new(BTreeMap::new()),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_cache_evictions: AtomicU64::new(0),
            plan_cache_invalidations: AtomicU64::new(0),
            compile_ns: AtomicU64::new(0),
        }
    }

    /// The shared disk-metrics handle this registry reads from.
    pub fn disk_metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    /// Attach the pool's fault-tolerance state (degraded flag, repairs).
    pub fn attach_health(&self, health: Arc<PoolHealth>) {
        *self.health.lock() = Some(health);
    }

    /// Attach a RetryDisk's counters discovered in the disk stack.
    pub fn attach_retry_stats(&self, stats: Arc<RetryStats>) {
        *self.retry.lock() = Some(stats);
    }

    /// Fold one operator execution into the lifetime totals.
    pub fn record_operator(&self, name: &str, rows: u64, pages: u64, nanos: u64) {
        let mut ops = self.operators.lock();
        let t = ops.entry(name.to_string()).or_default();
        t.invocations += 1;
        t.rows += rows;
        t.pages += pages;
        t.nanos += nanos;
    }

    /// A plan-cache lookup served from the cache.
    pub fn record_plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A cacheable statement that had to be compiled fresh.
    pub fn record_plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// An entry dropped to make room (LRU capacity eviction).
    pub fn record_plan_cache_eviction(&self) {
        self.plan_cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// An entry dropped because the catalog epoch moved past it.
    pub fn record_plan_cache_invalidation(&self) {
        self.plan_cache_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Add plan/predicate compilation time to the lifetime total.
    pub fn record_compile_ns(&self, ns: u64) {
        self.compile_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot every counter the registry aggregates.
    pub fn snapshot(&self) -> EngineMetrics {
        let (page_repairs, degraded, degraded_reason) = match self.health.lock().as_ref() {
            Some(h) => (h.page_repairs(), h.is_degraded(), h.reason()),
            None => (0, false, String::new()),
        };
        let (io_retries, io_gave_up) = match self.retry.lock().as_ref() {
            Some(r) => (r.retries(), r.gave_up()),
            None => (0, 0),
        };
        EngineMetrics {
            disk: self.metrics.snapshot(),
            wal: self.wal.stats(),
            buffer_wait_ns: self.buffer_wait_ns.load(Ordering::Relaxed),
            lock_waits: self.locks.wait_count(),
            lock_timeouts: self.locks.timeout_count(),
            lock_deadlocks: self.locks.deadlock_count(),
            page_repairs,
            io_retries,
            io_gave_up,
            degraded,
            degraded_reason,
            plan_cache: PlanCacheStats {
                hits: self.plan_cache_hits.load(Ordering::Relaxed),
                misses: self.plan_cache_misses.load(Ordering::Relaxed),
                evictions: self.plan_cache_evictions.load(Ordering::Relaxed),
                invalidations: self.plan_cache_invalidations.load(Ordering::Relaxed),
            },
            compile_ns: self.compile_ns.load(Ordering::Relaxed),
            operators: self
                .operators
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::AccessKind;
    use crate::wal::MemLog;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(
            DiskMetrics::new(),
            Arc::new(Wal::new(Box::new(MemLog::new()))),
            Arc::new(LockManager::default()),
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn operator_totals_accumulate() {
        let r = registry();
        r.record_operator("SELECT", 10, 3, 1_000);
        r.record_operator("SELECT", 5, 1, 2_000);
        r.record_operator("JOIN(HJ)", 7, 9, 500);
        let snap = r.snapshot();
        let sel = &snap.operators.iter().find(|(n, _)| n == "SELECT").unwrap().1;
        assert_eq!(sel.invocations, 2);
        assert_eq!(sel.rows, 15);
        assert_eq!(sel.pages, 4);
        assert_eq!(sel.nanos, 3_000);
        assert_eq!(snap.operators.len(), 2);
        // BTreeMap iteration: JOIN(HJ) sorts before SELECT.
        assert_eq!(snap.operators[0].0, "JOIN(HJ)");
    }

    #[test]
    fn plan_cache_counters_accumulate() {
        let r = registry();
        r.record_plan_cache_miss();
        r.record_plan_cache_miss();
        r.record_plan_cache_hit();
        r.record_plan_cache_eviction();
        r.record_plan_cache_invalidation();
        r.record_compile_ns(1_500);
        r.record_compile_ns(500);
        let snap = r.snapshot();
        assert_eq!(
            snap.plan_cache,
            PlanCacheStats {
                hits: 1,
                misses: 2,
                evictions: 1,
                invalidations: 1,
            }
        );
        assert_eq!(snap.compile_ns, 2_000);
        let rows = snap.rows();
        assert!(rows.iter().any(|(k, v)| k == "plan_cache.hits" && v == "1"));
        assert!(rows.iter().any(|(k, v)| k == "plan_cache.misses" && v == "2"));
        assert!(rows.iter().any(|(k, v)| k == "plan_cache.evictions" && v == "1"));
        assert!(rows
            .iter()
            .any(|(k, v)| k == "plan_cache.invalidations" && v == "1"));
        assert!(rows.iter().any(|(k, v)| k == "compile.ns" && v == "2000"));
    }

    #[test]
    fn fault_tolerance_rows_render() {
        let r = registry();
        // Bare registry: healthy defaults.
        let snap = r.snapshot();
        assert!(!snap.degraded);
        assert_eq!((snap.page_repairs, snap.io_retries, snap.io_gave_up), (0, 0, 0));
        let rows = snap.rows();
        assert!(rows.iter().any(|(k, v)| k == "storage.degraded" && v == "no"));
        assert!(rows.iter().any(|(k, v)| k == "lock.deadlocks" && v == "0"));
        // Attached health/retry handles feed through.
        let health = Arc::new(PoolHealth::default());
        health.mark_degraded("disk on fire");
        r.attach_health(health);
        let retry = Arc::new(RetryStats::default());
        retry.io_retries.fetch_add(3, Ordering::Relaxed);
        retry.io_gave_up.fetch_add(1, Ordering::Relaxed);
        r.attach_retry_stats(retry);
        let snap = r.snapshot();
        assert!(snap.degraded);
        assert_eq!((snap.io_retries, snap.io_gave_up), (3, 1));
        assert!(snap.io_gave_up <= snap.io_retries, "documented invariant");
        let rows = snap.rows();
        assert!(rows
            .iter()
            .any(|(k, v)| k == "storage.degraded" && v == "yes (disk on fire)"));
        assert!(rows.iter().any(|(k, v)| k == "io.retries" && v == "3"));
        assert!(rows.iter().any(|(k, v)| k == "io.gave_up" && v == "1"));
        assert!(rows.iter().any(|(k, _)| k == "page.repairs"));
    }

    #[test]
    fn snapshot_reflects_component_counters() {
        let r = registry();
        r.disk_metrics().record_read(AccessKind::Random);
        r.disk_metrics().record_buffer_hit();
        r.disk_metrics().record_buffer_miss();
        let snap = r.snapshot();
        assert_eq!(snap.disk.rnd_pages, 1);
        assert!((snap.buffer_hit_ratio() - 0.5).abs() < 1e-12);
        let rows = snap.rows();
        assert!(rows.iter().any(|(k, v)| k == "buffer.hit_ratio" && v == "0.5000"));
        assert!(rows.iter().any(|(k, _)| k == "buffer.wait_ns"));
        assert!(rows.iter().any(|(k, _)| k == "wal.appends"));
        assert!(rows.iter().any(|(k, _)| k == "lock.waits"));
    }
}
