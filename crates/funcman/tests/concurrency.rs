//! Concurrency tests for the Function Manager: the paper's claim that "the
//! shared library of the class will be unavailable only during the time it
//! takes to write the new function" — readers and redefiners interleave
//! safely, and invocations always see a consistent body.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mood_catalog::{Catalog, ClassBuilder, MethodSig};
use mood_datamodel::{TypeDescriptor, Value};
use mood_funcman::FunctionManager;
use mood_storage::StorageManager;

fn setup() -> (Arc<Catalog>, Arc<FunctionManager>, mood_storage::Oid) {
    let sm = Arc::new(StorageManager::in_memory());
    let cat = Arc::new(Catalog::create(sm).unwrap());
    cat.define_class(ClassBuilder::class("Vehicle").attribute("weight", TypeDescriptor::integer()))
        .unwrap();
    let fm = Arc::new(FunctionManager::new(cat.clone()));
    let oid = cat
        .new_object(
            "Vehicle",
            Value::tuple(vec![("weight", Value::Integer(100))]),
        )
        .unwrap();
    (cat, fm, oid)
}

#[test]
fn concurrent_invocations_share_one_loaded_body() {
    let (_cat, fm, oid) = setup();
    fm.define_source(
        "Vehicle",
        MethodSig::new("m", TypeDescriptor::integer(), vec![]),
        "weight * 2",
    )
    .unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let fm = fm.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                assert_eq!(fm.invoke(oid, "m", &[]).unwrap(), Value::Integer(200));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Shared object loaded once despite 1600 concurrent calls.
    assert_eq!(fm.stats().loads.load(Ordering::Relaxed), 1);
}

#[test]
fn redefinition_races_always_yield_a_consistent_body() {
    let (_cat, fm, oid) = setup();
    fm.define_source(
        "Vehicle",
        MethodSig::new("m", TypeDescriptor::integer(), vec![]),
        "weight * 1",
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    // Writer: flips the body between two versions.
    let writer = {
        let fm = fm.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let factor = if i.is_multiple_of(2) { 1 } else { 3 };
                fm.define_source(
                    "Vehicle",
                    MethodSig::new("m", TypeDescriptor::integer(), vec![]),
                    &format!("weight * {factor}"),
                )
                .unwrap();
            }
        })
    };
    // Readers: every call must observe exactly one of the two versions.
    let mut readers = Vec::new();
    for _ in 0..4 {
        let fm = fm.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut calls = 0;
            while !stop.load(Ordering::Relaxed) && calls < 400 {
                let v = fm.invoke(oid, "m", &[]).unwrap();
                assert!(
                    v == Value::Integer(100) || v == Value::Integer(300),
                    "torn body produced {v}"
                );
                calls += 1;
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn crash_in_one_thread_does_not_poison_others() {
    let (_cat, fm, oid) = setup();
    fm.register_native(
        "Vehicle",
        MethodSig::new("boom", TypeDescriptor::integer(), vec![]),
        Arc::new(|_, _, _| panic!("thread-local crash")),
    )
    .unwrap();
    fm.define_source(
        "Vehicle",
        MethodSig::new("ok", TypeDescriptor::integer(), vec![]),
        "weight",
    )
    .unwrap();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut handles = Vec::new();
    for t in 0..6 {
        let fm = fm.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                if t % 2 == 0 {
                    assert!(fm.invoke(oid, "boom", &[]).is_err());
                } else {
                    assert_eq!(fm.invoke(oid, "ok", &[]).unwrap(), Value::Integer(100));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    std::panic::set_hook(hook);
}

#[test]
fn end_scope_during_traffic_is_safe() {
    let (_cat, fm, oid) = setup();
    fm.define_source(
        "Vehicle",
        MethodSig::new("m", TypeDescriptor::integer(), vec![]),
        "weight",
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let scoper = {
        let fm = fm.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                fm.end_scope();
                std::thread::yield_now();
            }
        })
    };
    for _ in 0..500 {
        assert_eq!(fm.invoke(oid, "m", &[]).unwrap(), Value::Integer(100));
    }
    stop.store(true, Ordering::Relaxed);
    scoper.join().unwrap();
    // Loads happened repeatedly (scope resets force reloads) but never
    // broke an invocation.
    assert!(fm.stats().loads.load(Ordering::Relaxed) >= 1);
}
