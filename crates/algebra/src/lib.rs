//! # mood-algebra — the MOOD object algebra
//!
//! Section 3.2 of the paper: general operators (`ObjId`, `TypeId`, `Deref`,
//! `isA`, `Bind`), collection operators (`Select`, `IndSel`, `Project`,
//! `Join` with four methods, `Partition`, `Sort`, `DupElim`, `Union`,
//! `Intersection`, `Difference`) and conversion operators (`asSet`,
//! `asList`, `asExtent`, `Unnest`, `Nest`, `Flatten`) — with the
//! return-type rules of Tables 1–7 enforced and encoded as pure functions
//! ([`collection`]).
//!
//! The four join methods compute identical pairs but with the §6 access
//! patterns, which the instrumented storage layer exposes for the cost
//! model benches.

pub mod collection;
pub mod error;
pub mod join;
pub mod ops;
pub mod restructure;
pub mod setops;
pub mod traced;

pub use collection::{
    as_extent_return, as_set_list_elements, dupelim_return, join_return, select_return,
    setop_return, unnest_accepts, Collection, Kind, Obj,
};
pub use error::{AlgebraError, Result};
pub use join::{
    join, join_par, materialize, materialize_par, pairs_to_collection, JoinMethod, JoinRhs,
};
pub use mood_storage::exec::ExecutionConfig;
pub use ops::{
    bind, bind_class, deref, ind_sel, is_a, obj_id, select, select_compiled, select_compiled_par,
    select_par, type_id, IndexType, Predicate, SyncPredicate,
};
pub use restructure::{
    as_extent, as_list, as_set, flatten, nest, partition, project, project_par, sort, sort_par,
    unnest,
};
pub use setops::{
    difference, difference_par, dup_elim, dup_elim_par, intersection, intersection_par, union,
    union_par,
};
pub use traced::{traced_join, traced_select};
