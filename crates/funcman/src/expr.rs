//! The method-body language: a C++-flavored expression interpreter.
//!
//! MOOD method bodies are C++ source, pre-processed and compiled once when
//! the function is added (Section 2). Shipping a C++ compiler is out of
//! scope for the reproduction, so run-time-defined bodies are expressions in
//! a C++-expression-shaped language:
//!
//! ```text
//! int Vehicle::lbweight() { return weight * 2.2075; }
//!                                  ^^^^^^^^^^^^^^^^ this part
//! ```
//!
//! "Compilation" is parsing to an AST at definition time — errors surface
//! when the function is *added*, not when it is called, exactly like the
//! paper's compile step. Evaluation is run-time type checked through
//! [`crate::operand::OperandDataType`]. Identifier resolution: parameters shadow attributes;
//! `self.a`, bare `a` and dotted paths `a.b.c` (dereferencing through the
//! resolver) all work.

use mood_datamodel::{Resolver, Value};

use crate::exception::{Exception, ExceptionKind};
use crate::operand::OperandDataType as Op;

/// Parsed expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal, materialized as a [`Value`] once at compile time so the
    /// evaluator returns it by reference instead of re-allocating (string
    /// literals used to clone per evaluation, i.e. per row in a scan).
    Lit(Value),
    /// `a.b.c` — first segment may be `self`, a parameter or an attribute.
    Path(Vec<String>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `v BETWEEN lo AND hi` — no surface syntax in the body language;
    /// constructed by embedders (MOODSQL lowers its `BETWEEN` here so the
    /// compiler can preserve its evaluate-all-operands semantics).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `name(args...)` — a call to another method on `self`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Literal constructor for integers, with the same narrowing rule the
    /// evaluator historically applied: fits-in-i32 → `Integer`, else
    /// `LongInteger`.
    pub fn int(i: i64) -> Expr {
        match i32::try_from(i) {
            Ok(v) => Expr::Lit(Value::Integer(v)),
            Err(_) => Expr::Lit(Value::LongInteger(i)),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    pub(crate) fn cmp_symbol(&self) -> Option<&'static str> {
        Some(match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    Sym(&'static str),
}

fn lex(src: &str) -> Result<Vec<Tok>, Exception> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let err = |m: String| Exception::new(ExceptionKind::CompileError, m);
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit()
            || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !seen_dot)) {
                // A dot is part of the number only if a digit follows
                // (otherwise it is a path separator after an index-like
                // identifier — cannot happen after digits, but be strict).
                if chars[i] == '.' {
                    if !chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        break;
                    }
                    seen_dot = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if seen_dot {
                toks.push(Tok::Float(
                    text.parse()
                        .map_err(|e| err(format!("bad float {text}: {e}")))?,
                ));
            } else {
                toks.push(Tok::Int(
                    text.parse()
                        .map_err(|e| err(format!("bad int {text}: {e}")))?,
                ));
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c == '"' || c == '\'' {
            let quote = c;
            i += 1;
            let start = i;
            while i < chars.len() && chars[i] != quote {
                i += 1;
            }
            if i == chars.len() {
                return Err(err("unterminated string literal".into()));
            }
            toks.push(Tok::Str(chars[start..i].iter().collect()));
            i += 1;
        } else {
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            let sym = match two.as_str() {
                "==" | "!=" | "<=" | ">=" | "&&" | "||" => {
                    i += 2;
                    match two.as_str() {
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "&&" => "&&",
                        _ => "||",
                    }
                }
                _ => {
                    i += 1;
                    match c {
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '%' => "%",
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        '.' => ".",
                        ';' => ";",
                        '<' => "<",
                        '>' => ">",
                        '=' => "=",
                        '!' => "!",
                        '{' => "{",
                        '}' => "}",
                        other => return Err(err(format!("unexpected character '{other}'"))),
                    }
                }
            };
            toks.push(Tok::Sym(sym));
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser (recursive descent, precedence climbing)
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> Exception {
        Exception::new(ExceptionKind::CompileError, msg.into())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), Exception> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}' at token {}", self.pos)))
        }
    }

    fn parse_or(&mut self) -> Result<Expr, Exception> {
        let mut lhs = self.parse_and()?;
        while self.eat_sym("||") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, Exception> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_sym("&&") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, Exception> {
        let lhs = self.parse_addsub()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) | Some(Tok::Sym("=")) => BinOp::Eq,
            Some(Tok::Sym("!=")) => BinOp::Ne,
            Some(Tok::Sym("<")) => BinOp::Lt,
            Some(Tok::Sym("<=")) => BinOp::Le,
            Some(Tok::Sym(">")) => BinOp::Gt,
            Some(Tok::Sym(">=")) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_addsub()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_addsub(&mut self) -> Result<Expr, Exception> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_muldiv()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_muldiv(&mut self) -> Result<Expr, Exception> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Mul
            } else if self.eat_sym("/") {
                BinOp::Div
            } else if self.eat_sym("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, Exception> {
        if self.eat_sym("-") {
            Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
        } else if self.eat_sym("!") {
            Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, Exception> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::int(i))
            }
            Some(Tok::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Float(f)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::String(s)))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "true" => return Ok(Expr::Lit(Value::Boolean(true))),
                    "false" => return Ok(Expr::Lit(Value::Boolean(false))),
                    _ => {}
                }
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.parse_or()?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                let mut path = vec![name];
                while self.eat_sym(".") {
                    match self.peek().cloned() {
                        Some(Tok::Ident(seg)) => {
                            self.pos += 1;
                            path.push(seg);
                        }
                        _ => return Err(self.err("expected identifier after '.'")),
                    }
                }
                Ok(Expr::Path(path))
            }
            Some(Tok::Sym("(")) => {
                self.pos += 1;
                let e = self.parse_or()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

/// "Compile" a method body. Accepts either a bare expression or the
/// C++-style `{ return <expr>; }` / `return <expr>;` form.
pub fn compile(source: &str) -> Result<Expr, Exception> {
    let mut toks = lex(source)?;
    // Strip an optional surrounding { ... }.
    if toks.first() == Some(&Tok::Sym("{")) && toks.last() == Some(&Tok::Sym("}")) {
        toks.remove(0);
        toks.pop();
    }
    // Strip a leading `return` and a trailing `;`.
    if matches!(toks.first(), Some(Tok::Ident(k)) if k == "return") {
        toks.remove(0);
    }
    if toks.last() == Some(&Tok::Sym(";")) {
        toks.pop();
    }
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_or()?;
    if p.pos != p.toks.len() {
        return Err(p.err(format!("trailing tokens after expression (at {})", p.pos)));
    }
    Ok(e)
}

/// Dispatcher for `Call` nodes: invoke `method` with `args` on the current
/// self object. The Function Manager supplies this, closing the loop for
/// methods that call other methods.
pub type Dispatcher<'a> = &'a dyn Fn(&str, &[Value]) -> Result<Value, Exception>;

/// Evaluation context for one invocation.
pub struct EvalCtx<'a> {
    /// The receiver object's value.
    pub self_value: &'a Value,
    /// Named arguments in signature order.
    pub args: &'a [(String, Value)],
    /// Dereferencing for path traversal (None: paths through Refs fail).
    pub resolver: Option<&'a dyn Resolver>,
    /// Method-call dispatcher (None: `Call` nodes fail).
    pub dispatcher: Option<Dispatcher<'a>>,
}

impl<'a> EvalCtx<'a> {
    fn lookup_root(&self, name: &str) -> Option<Value> {
        if name == "self" {
            return Some(self.self_value.clone());
        }
        if let Some((_, v)) = self.args.iter().find(|(n, _)| n == name) {
            return Some(v.clone());
        }
        self.self_value.field(name).cloned()
    }

    fn step(&self, base: &Value, seg: &str) -> Result<Value, Exception> {
        let mut cur = base.clone();
        // Dereference as many times as needed to reach a tuple.
        loop {
            match cur {
                Value::Ref(oid) => {
                    let resolver = self.resolver.ok_or_else(|| {
                        Exception::type_error("path traverses a reference but no resolver given")
                    })?;
                    cur = resolver.resolve(oid).ok_or_else(|| {
                        Exception::new(ExceptionKind::System, format!("dangling reference {oid}"))
                    })?;
                }
                Value::Tuple(_) => {
                    return cur.field(seg).cloned().ok_or_else(|| {
                        Exception::new(
                            ExceptionKind::UnknownIdentifier,
                            format!("no attribute {seg}"),
                        )
                    })
                }
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(Exception::type_error(format!(
                        "cannot navigate into {other} with .{seg}"
                    )))
                }
            }
        }
    }
}

/// A borrowed-or-owned evaluation result: literals and attribute roots come
/// back borrowed so the interpreter stops allocating a fresh `Value` per
/// evaluation (per row, under a scan) for constants.
enum Ev<'a> {
    B(&'a Value),
    O(Value),
}

impl<'a> Ev<'a> {
    fn get(&self) -> &Value {
        match self {
            Ev::B(v) => v,
            Ev::O(v) => v,
        }
    }

    fn into_value(self) -> Value {
        match self {
            Ev::B(v) => v.clone(),
            Ev::O(v) => v,
        }
    }
}

/// AND truth table of [`Op::and`] on borrowed values (callers have already
/// handled the definite-false left short-circuit and atomicity).
fn and_values(l: &Value, r: &Value) -> Result<Value, Exception> {
    match (l, r) {
        (Value::Boolean(false), _) | (_, Value::Boolean(false)) => Ok(Value::Boolean(false)),
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Boolean(a), Value::Boolean(b)) => Ok(Value::Boolean(*a && *b)),
        _ => Err(Exception::type_error("AND needs Boolean operands")),
    }
}

/// OR truth table of [`Op::or`] on borrowed values.
fn or_values(l: &Value, r: &Value) -> Result<Value, Exception> {
    match (l, r) {
        (Value::Boolean(true), _) | (_, Value::Boolean(true)) => Ok(Value::Boolean(true)),
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Boolean(a), Value::Boolean(b)) => Ok(Value::Boolean(*a || *b)),
        _ => Err(Exception::type_error("OR needs Boolean operands")),
    }
}

/// Evaluate a compiled body.
pub fn eval(expr: &Expr, ctx: &EvalCtx<'_>) -> Result<Value, Exception> {
    eval_ref(expr, ctx).map(Ev::into_value)
}

fn eval_ref<'a>(expr: &'a Expr, ctx: &EvalCtx<'a>) -> Result<Ev<'a>, Exception> {
    Ok(match expr {
        Expr::Lit(v) => Ev::B(v),
        Expr::Path(path) => {
            let mut cur = ctx.lookup_root(&path[0]).ok_or_else(|| {
                Exception::new(
                    ExceptionKind::UnknownIdentifier,
                    format!("unknown identifier {}", path[0]),
                )
            })?;
            for seg in &path[1..] {
                cur = ctx.step(&cur, seg)?;
            }
            // A terminal Ref is fine (reference-valued result).
            Ev::O(cur)
        }
        Expr::Unary(op, inner) => {
            let v = Op::from_value(eval_ref(inner, ctx)?.get())?;
            match op {
                UnOp::Neg => Ev::O(v.neg()?.into_value()),
                UnOp::Not => Ev::O(v.not()?.into_value()),
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            // Short-circuit AND/OR before evaluating the right side — the
            // optimizer's predicate-ordering heuristic depends on this.
            if *op == BinOp::And {
                let l = eval_ref(lhs, ctx)?;
                Op::ensure_atomic(l.get())?;
                if matches!(l.get(), Value::Boolean(false)) {
                    return Ok(Ev::O(Value::Boolean(false)));
                }
                let r = eval_ref(rhs, ctx)?;
                Op::ensure_atomic(r.get())?;
                return Ok(Ev::O(and_values(l.get(), r.get())?));
            }
            if *op == BinOp::Or {
                let l = eval_ref(lhs, ctx)?;
                Op::ensure_atomic(l.get())?;
                if matches!(l.get(), Value::Boolean(true)) {
                    return Ok(Ev::O(Value::Boolean(true)));
                }
                let r = eval_ref(rhs, ctx)?;
                Op::ensure_atomic(r.get())?;
                return Ok(Ev::O(or_values(l.get(), r.get())?));
            }
            if let Some(sym) = op.cmp_symbol() {
                // Comparisons run entirely on borrowed values: a string
                // attribute against a string constant no longer clones
                // either side per row.
                let l = eval_ref(lhs, ctx)?;
                Op::ensure_atomic(l.get())?;
                let r = eval_ref(rhs, ctx)?;
                Op::ensure_atomic(r.get())?;
                return Ok(Ev::O(Op::cmp_op_values(sym, l.get(), r.get())?));
            }
            let l = Op::from_value(eval_ref(lhs, ctx)?.get())?;
            let r = Op::from_value(eval_ref(rhs, ctx)?.get())?;
            let out = match op {
                BinOp::Add => l.add(&r)?,
                BinOp::Sub => l.sub(&r)?,
                BinOp::Mul => l.mul(&r)?,
                BinOp::Div => l.div(&r)?,
                BinOp::Rem => l.rem(&r)?,
                other => unreachable!("comparison {other:?} handled above"),
            };
            Ev::O(out.into_value())
        }
        Expr::Between(v, lo, hi) => {
            let v = eval_ref(v, ctx)?;
            let lo = eval_ref(lo, ctx)?;
            let hi = eval_ref(hi, ctx)?;
            let (v, lo, hi) = (v.get(), lo.get(), hi.get());
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Ev::O(Value::Null));
            }
            let ge = Op::compare_values(v, lo)?.map(|o| o != std::cmp::Ordering::Less);
            let le = Op::compare_values(v, hi)?.map(|o| o != std::cmp::Ordering::Greater);
            match (ge, le) {
                (Some(a), Some(b)) => Ev::O(Value::Boolean(a && b)),
                _ => return Err(Exception::type_error("BETWEEN on incomparable values")),
            }
        }
        Expr::Call(name, args) => {
            let dispatcher = ctx.dispatcher.ok_or_else(|| {
                Exception::new(
                    ExceptionKind::MissingFunction,
                    format!("method call {name}() outside a dispatching context"),
                )
            })?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_ref(a, ctx)?.into_value());
            }
            Ev::O(dispatcher(name, &vals)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with<'a>(self_value: &'a Value, args: &'a [(String, Value)]) -> EvalCtx<'a> {
        EvalCtx {
            self_value,
            args,
            resolver: None,
            dispatcher: None,
        }
    }

    #[test]
    fn lbweight_body_from_the_paper() {
        // int Vehicle::lbweight() { return weight*2.2075; }
        let body = compile("{ return weight * 2.2075; }").unwrap();
        let vehicle = Value::tuple(vec![("weight", Value::Integer(1000))]);
        let out = eval(&body, &ctx_with(&vehicle, &[])).unwrap();
        assert_eq!(out, Value::Float(2207.5));
    }

    #[test]
    fn bare_expression_and_return_forms() {
        for src in ["weight + 1", "return weight + 1;", "{ return weight + 1; }"] {
            let body = compile(src).unwrap();
            let v = Value::tuple(vec![("weight", Value::Integer(9))]);
            assert_eq!(eval(&body, &ctx_with(&v, &[])).unwrap(), Value::Integer(10));
        }
    }

    #[test]
    fn parameters_shadow_attributes() {
        let body = compile("weight * factor").unwrap();
        let v = Value::tuple(vec![
            ("weight", Value::Integer(10)),
            ("factor", Value::Integer(99)),
        ]);
        let args = vec![("factor".to_string(), Value::Integer(2))];
        assert_eq!(
            eval(&body, &ctx_with(&v, &args)).unwrap(),
            Value::Integer(20)
        );
    }

    #[test]
    fn precedence_matches_c() {
        let body = compile("2 + 3 * 4 - 6 / 2").unwrap();
        let v = Value::Tuple(vec![]);
        assert_eq!(eval(&body, &ctx_with(&v, &[])).unwrap(), Value::Integer(11));
        let body = compile("(2 + 3) * 4").unwrap();
        assert_eq!(eval(&body, &ctx_with(&v, &[])).unwrap(), Value::Integer(20));
    }

    #[test]
    fn booleans_and_comparisons() {
        let body = compile("weight > 500 && weight <= 1500 || false").unwrap();
        let v = Value::tuple(vec![("weight", Value::Integer(1000))]);
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::Boolean(true)
        );
        let body = compile("!(weight == 1000)").unwrap();
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::Boolean(false)
        );
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // RHS would divide by zero; short-circuit must skip it.
        let body = compile("false && (1/0 == 1)").unwrap();
        let v = Value::Tuple(vec![]);
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::Boolean(false)
        );
        let body = compile("true || (1/0 == 1)").unwrap();
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn path_traversal_through_refs() {
        use mood_storage::{FileId, Oid, PageId, SlotId};
        use std::collections::HashMap;
        let engine_oid = Oid::new(FileId(1), PageId(0), SlotId(0), 1);
        let mut store = HashMap::new();
        store.insert(
            engine_oid,
            Value::tuple(vec![("cylinders", Value::Integer(6))]),
        );
        let car = Value::tuple(vec![("engine", Value::Ref(engine_oid))]);
        let body = compile("self.engine.cylinders * 2").unwrap();
        let ctx = EvalCtx {
            self_value: &car,
            args: &[],
            resolver: Some(&store),
            dispatcher: None,
        };
        assert_eq!(eval(&body, &ctx).unwrap(), Value::Integer(12));
    }

    #[test]
    fn null_path_yields_null() {
        let car = Value::tuple(vec![("engine", Value::Null)]);
        let body = compile("engine.cylinders").unwrap();
        let ctx = ctx_with(&car, &[]);
        assert_eq!(eval(&body, &ctx).unwrap(), Value::Null);
    }

    #[test]
    fn unknown_identifier_is_an_exception() {
        let body = compile("nonexistent + 1").unwrap();
        let v = Value::Tuple(vec![]);
        let e = eval(&body, &ctx_with(&v, &[])).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::UnknownIdentifier);
    }

    #[test]
    fn compile_errors_surface_at_definition_time() {
        assert!(compile("1 +").is_err());
        assert!(compile("(1 + 2").is_err());
        assert!(compile("1 2").is_err());
        assert!(compile("\"unterminated").is_err());
        assert!(compile("@").is_err());
    }

    #[test]
    fn string_literals_and_equality() {
        let body = compile("name == \"BMW\"").unwrap();
        let v = Value::tuple(vec![("name", Value::string("BMW"))]);
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::Boolean(true)
        );
        let body = compile("name == 'Audi'").unwrap();
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::Boolean(false)
        );
    }

    #[test]
    fn method_calls_go_through_dispatcher() {
        let body = compile("lbweight() + 1").unwrap();
        let v = Value::tuple(vec![("weight", Value::Integer(100))]);
        let dispatch = |name: &str, _args: &[Value]| -> Result<Value, Exception> {
            assert_eq!(name, "lbweight");
            Ok(Value::Integer(220))
        };
        let ctx = EvalCtx {
            self_value: &v,
            args: &[],
            resolver: None,
            dispatcher: Some(&dispatch),
        };
        assert_eq!(eval(&body, &ctx).unwrap(), Value::Integer(221));
        // Without a dispatcher it raises.
        let e = eval(&body, &ctx_with(&v, &[])).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::MissingFunction);
    }

    #[test]
    fn big_int_literals_become_long() {
        let body = compile("5000000000").unwrap();
        let v = Value::Tuple(vec![]);
        assert_eq!(
            eval(&body, &ctx_with(&v, &[])).unwrap(),
            Value::LongInteger(5_000_000_000)
        );
    }
}
