//! # mood-core — the METU Object-Oriented DBMS (MOOD) kernel
//!
//! The public face of the reproduction: a [`Mood`] database handle wiring
//! together the ESM-substrate storage manager, the catalog, the Function
//! Manager, the MOODSQL interpreter with its cost-based optimizer, and the
//! headless MoodView tools — the component diagram of the paper's
//! Figure 2.1.
//!
//! ```
//! use mood_core::Mood;
//!
//! let db = Mood::in_memory();
//! db.execute("CREATE CLASS Employee TUPLE (name String(32), age Integer)").unwrap();
//! db.execute("new Employee <'Budak Arpinar', 25>").unwrap();
//! let mut cursor = db.query("SELECT e.name FROM Employee e WHERE e.age > 20").unwrap();
//! assert_eq!(cursor.next().unwrap()[0].to_string(), "'Budak Arpinar'");
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

pub use mood_algebra as algebra;
pub use mood_catalog as catalog;
pub use mood_cost as cost;
pub use mood_datamodel as datamodel;
pub use mood_funcman as funcman;
pub use mood_optimizer as optimizer;
pub use mood_sql as sql;
pub use mood_storage as storage;
pub use mood_trace as trace;
pub use mood_view as view;

pub use mood_catalog::{Catalog, CatalogRoot, ClassBuilder, DatabaseStats, IndexKind, MethodSig};
pub use mood_datamodel::{TypeDescriptor, Value};
pub use mood_funcman::{Exception, FunctionManager, NativeFn};
pub use mood_optimizer::OptimizerConfig;
pub use mood_sql::{Answer, Cursor, QueryResult, Session, SqlError};
pub use mood_storage::{
    DiskMetrics, EngineMetrics, MetricsRegistry, MetricsSnapshot, Oid, PhysicalParams,
    StorageManager,
};
pub use mood_trace::{RingBuffer, SpanRecord, TextDump, Tracer};

/// Top-level error for kernel operations.
#[derive(Debug)]
pub enum MoodError {
    Sql(SqlError),
    Catalog(mood_catalog::CatalogError),
    Storage(mood_storage::StorageError),
    Exception(Exception),
    Io(String),
}

impl std::fmt::Display for MoodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoodError::Sql(e) => write!(f, "{e}"),
            MoodError::Catalog(e) => write!(f, "{e}"),
            MoodError::Storage(e) => write!(f, "{e}"),
            MoodError::Exception(e) => write!(f, "{e}"),
            MoodError::Io(m) => write!(f, "I/O: {m}"),
        }
    }
}

impl std::error::Error for MoodError {}

impl From<SqlError> for MoodError {
    fn from(e: SqlError) -> Self {
        MoodError::Sql(e)
    }
}
impl From<mood_catalog::CatalogError> for MoodError {
    fn from(e: mood_catalog::CatalogError) -> Self {
        MoodError::Catalog(e)
    }
}
impl From<mood_storage::StorageError> for MoodError {
    fn from(e: mood_storage::StorageError) -> Self {
        MoodError::Storage(e)
    }
}
impl From<Exception> for MoodError {
    fn from(e: Exception) -> Self {
        MoodError::Exception(e)
    }
}

pub type Result<T> = std::result::Result<T, MoodError>;

/// A MOOD database instance.
pub struct Mood {
    sm: Arc<StorageManager>,
    catalog: Arc<Catalog>,
    funcman: Arc<FunctionManager>,
    session: Mutex<Session>,
}

impl Mood {
    /// An in-memory database (tests, examples, benches).
    pub fn in_memory() -> Mood {
        Self::from_storage(Arc::new(StorageManager::in_memory()), None)
            .expect("in-memory bootstrap cannot fail")
    }

    /// In-memory with an explicit buffer-pool size in frames — small pools
    /// reproduce the paper's worst-case (no-buffer-hit) cost analyses.
    pub fn in_memory_with_pool(frames: usize) -> Mood {
        Self::from_storage(Arc::new(StorageManager::in_memory_with_pool(frames)), None)
            .expect("in-memory bootstrap cannot fail")
    }

    /// Open (or create) a database rooted at a directory. The storage
    /// manager replays the WAL before anything reads a page, so a database
    /// that crashed mid-flight comes back with exactly its committed state.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Mood> {
        let sm = Arc::new(StorageManager::on_disk(dir.as_ref(), 1024)?);
        Self::open_with_storage(sm, dir)
    }

    /// Bootstrap a database over a caller-assembled durable storage
    /// manager rooted at `dir` (see [`StorageManager::with_parts`]) — the
    /// crash-simulation harness uses this to interpose fault-injecting
    /// disk/log wrappers while the real bytes live underneath.
    pub fn open_with_storage(
        sm: Arc<StorageManager>,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Mood> {
        let dir = dir.as_ref();
        let root_file = dir.join("catalog.root");
        let root = match std::fs::read(&root_file) {
            Ok(bytes) if bytes.len() == 12 => Some(CatalogRoot {
                types: mood_storage::FileId(u32::from_le_bytes(bytes[0..4].try_into().unwrap())),
                attrs: mood_storage::FileId(u32::from_le_bytes(bytes[4..8].try_into().unwrap())),
                funcs: mood_storage::FileId(u32::from_le_bytes(bytes[8..12].try_into().unwrap())),
            }),
            _ => None,
        };
        // Bootstrap is itself a transaction: creating the catalog heaps
        // either commits whole or leaves no trace for the next open.
        let txn = sm.txn_begin();
        let db = match Self::from_storage(sm.clone(), root) {
            Ok(db) => {
                sm.txn_commit(txn)?;
                db
            }
            Err(e) => {
                let _ = sm.txn_rollback(txn);
                return Err(e);
            }
        };
        if root.is_none() {
            let r = db.catalog.root();
            let mut bytes = Vec::with_capacity(12);
            bytes.extend_from_slice(&r.types.0.to_le_bytes());
            bytes.extend_from_slice(&r.attrs.0.to_le_bytes());
            bytes.extend_from_slice(&r.funcs.0.to_le_bytes());
            write_durably(&root_file, &bytes).map_err(|e| MoodError::Io(e.to_string()))?;
        }
        // Recovery replayed straight onto the disk image; flush + sync it
        // and restart the log so each open starts from a clean checkpoint.
        db.checkpoint()?;
        Ok(db)
    }

    fn from_storage(sm: Arc<StorageManager>, root: Option<CatalogRoot>) -> Result<Mood> {
        let catalog = Arc::new(match root {
            Some(r) => Catalog::open(sm.clone(), r)?,
            None => Catalog::create(sm.clone())?,
        });
        let funcman = Arc::new(FunctionManager::new(catalog.clone()));
        let session = Mutex::new(Session::new(catalog.clone(), funcman.clone()));
        Ok(Mood {
            sm,
            catalog,
            funcman,
            session,
        })
    }

    // ------------------------------------------------------------------
    // SQL interface (the "standard communication protocol" of §9.4)
    // ------------------------------------------------------------------

    /// Execute one MOODSQL statement.
    pub fn execute(&self, sql: &str) -> Result<Answer> {
        Ok(self.session.lock().execute(sql)?)
    }

    /// Execute a query, returning a cursor (Section 9.4's mechanism).
    pub fn query(&self, sql: &str) -> Result<Cursor> {
        Ok(self.session.lock().query(sql)?)
    }

    /// Optimize a query and return its access plan in the paper's notation.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match self.execute(&format!("EXPLAIN {sql}"))? {
            Answer::Plan(p) => Ok(p),
            other => Err(MoodError::Sql(SqlError::Exec(format!(
                "not a plan: {other:?}"
            )))),
        }
    }

    /// Execute a query with per-operator instrumentation and return the
    /// estimate-vs-actual report (`EXPLAIN ANALYZE`).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        match self.execute(&format!("EXPLAIN ANALYZE {sql}"))? {
            Answer::Plan(p) => Ok(p),
            other => Err(MoodError::Sql(SqlError::Exec(format!(
                "not a plan: {other:?}"
            )))),
        }
    }

    /// Stage trace of the last executed SELECT.
    pub fn last_trace(&self) -> Vec<String> {
        self.session.lock().last_trace().to_vec()
    }

    /// Use a specific optimizer configuration (physical disk parameters,
    /// CPU cost). Applied in place so an open transaction survives.
    pub fn set_optimizer_config(&self, config: OptimizerConfig) {
        self.session.lock().set_config(config);
    }

    /// Set the worker count for the chunk-parallel execution path (1 =
    /// sequential, the default). Parallel runs produce byte-identical
    /// results and unchanged page-access totals.
    pub fn set_parallelism(&self, parallelism: usize) {
        self.session.lock().set_parallelism(parallelism);
    }

    /// Toggle the session plan cache (on by default). Disabling clears it.
    pub fn set_plan_cache_enabled(&self, on: bool) {
        self.session.lock().set_plan_cache_enabled(on);
    }

    /// Toggle compiled predicate/projection evaluation (on by default);
    /// clears the plan cache either way, since cached plans embed their
    /// compiled programs.
    pub fn set_compiled_predicates(&self, on: bool) {
        self.session.lock().set_compiled_predicates(on);
    }

    /// Drop every cached plan (the cache counters are untouched).
    pub fn clear_plan_cache(&self) {
        self.session.lock().clear_plan_cache();
    }

    // ------------------------------------------------------------------
    // Direct component access
    // ------------------------------------------------------------------

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn funcman(&self) -> &Arc<FunctionManager> {
        &self.funcman
    }

    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }

    /// Disk-access metrics (the instrumentation the benches read).
    pub fn metrics(&self) -> &DiskMetrics {
        self.sm.metrics()
    }

    /// A point-in-time snapshot of the engine-wide metrics registry:
    /// buffer/disk counters, WAL appends and fsyncs, lock waits, and
    /// per-operator lifetime totals (also reachable as `SHOW METRICS`).
    pub fn engine_metrics(&self) -> EngineMetrics {
        self.sm.registry().snapshot()
    }

    /// The session tracer. Attach a subscriber (e.g. [`RingBuffer`]) to
    /// observe parse/bind/optimize/execute and per-operator spans.
    pub fn tracer(&self) -> Tracer {
        self.session.lock().tracer().clone()
    }

    /// Register a natively implemented method (the analogue of linking
    /// pre-compiled C++ object code).
    pub fn register_native_method(
        &self,
        class: &str,
        sig: MethodSig,
        body: NativeFn,
    ) -> Result<()> {
        Ok(self.funcman.register_native(class, sig, body)?)
    }

    /// Invoke a method on a stored object.
    pub fn invoke(&self, oid: Oid, method: &str, args: &[Value]) -> Result<Value> {
        Ok(self.funcman.invoke(oid, method, args)?)
    }

    /// Create an object directly (non-SQL path used by loaders).
    pub fn new_object(&self, class: &str, value: Value) -> Result<Oid> {
        Ok(self.catalog.new_object(class, value)?)
    }

    /// Fetch an object (dynamic class name + value).
    pub fn get_object(&self, oid: Oid) -> Result<(String, Value)> {
        Ok(self.catalog.get_object(oid)?)
    }

    /// Recompute the Table 8/9 statistics by scanning.
    pub fn collect_stats(&self) -> Result<DatabaseStats> {
        Ok(self.catalog.collect_stats()?)
    }

    /// Flush dirty pages and truncate the log.
    pub fn checkpoint(&self) -> Result<()> {
        Ok(self.sm.checkpoint()?)
    }

    // ------------------------------------------------------------------
    // MoodView passthroughs
    // ------------------------------------------------------------------

    /// ASCII class-hierarchy browser.
    pub fn render_hierarchy(&self) -> String {
        mood_view::render_hierarchy(&self.catalog)
    }

    /// Graphviz DOT of the class hierarchy.
    pub fn render_hierarchy_dot(&self) -> String {
        mood_view::render_hierarchy_dot(&self.catalog)
    }

    /// The Figure 9.2 class-presentation card.
    pub fn render_class(&self, class: &str) -> Result<String> {
        Ok(mood_view::render_class_card(&self.catalog, class)?)
    }

    /// Generic object presentation, following references to `depth`.
    pub fn render_object(&self, oid: Oid, depth: usize) -> String {
        mood_view::render_object(&self.catalog, oid, depth)
    }
}

/// Write a small control file so it survives a crash: write, fsync the
/// file, then fsync the containing directory (the entry itself).
fn write_durably(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_pipeline() {
        let db = Mood::in_memory();
        db.execute("CREATE CLASS Employee TUPLE (name String(32), age Integer)")
            .unwrap();
        db.execute("new Employee <'Asuman Dogac', 50>").unwrap();
        db.execute("new Employee <'Cetin Ozkan', 30>").unwrap();
        let mut cur = db
            .query("SELECT e.name FROM Employee e WHERE e.age > 40")
            .unwrap();
        assert_eq!(cur.len(), 1);
        assert_eq!(cur.next().unwrap()[0], Value::string("Asuman Dogac"));
    }

    #[test]
    fn explain_and_trace() {
        let db = Mood::in_memory();
        db.execute("CREATE CLASS C TUPLE (x Integer)").unwrap();
        db.execute("new C <1>").unwrap();
        let plan = db.explain("SELECT c FROM C c WHERE c.x = 1").unwrap();
        assert!(plan.contains("BIND(C, c)"), "{plan}");
        db.execute("SELECT c FROM C c WHERE c.x = 1").unwrap();
        assert!(db.last_trace().contains(&"FROM".to_string()));
    }

    #[test]
    fn native_method_through_facade() {
        let db = Mood::in_memory();
        db.execute("CREATE CLASS Vehicle TUPLE (weight Integer)")
            .unwrap();
        db.register_native_method(
            "Vehicle",
            MethodSig::new("lbweight", TypeDescriptor::float(), vec![]),
            Arc::new(|recv, _args, _res| {
                let w = recv.field("weight").and_then(|v| v.as_f64()).unwrap_or(0.0);
                Ok(Value::Float(w * 2.2075))
            }),
        )
        .unwrap();
        let Answer::Created(Value::Ref(oid)) = db.execute("new Vehicle <1000>").unwrap() else {
            panic!()
        };
        assert_eq!(
            db.invoke(oid, "lbweight", &[]).unwrap(),
            Value::Float(2207.5)
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("mood-core-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Mood::open(&dir).unwrap();
            db.execute("CREATE CLASS Employee TUPLE (name String, age Integer)")
                .unwrap();
            db.execute("new Employee <'Tansel Okay', 40>").unwrap();
            db.checkpoint().unwrap();
        }
        {
            let db = Mood::open(&dir).unwrap();
            let mut cur = db.query("SELECT e.name FROM Employee e").unwrap();
            assert_eq!(cur.len(), 1);
            assert_eq!(cur.next().unwrap()[0], Value::string("Tansel Okay"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn moodview_passthroughs() {
        let db = Mood::in_memory();
        db.execute("CREATE CLASS Vehicle TUPLE (id Integer)")
            .unwrap();
        db.execute("CREATE CLASS Automobile INHERITS FROM Vehicle")
            .unwrap();
        assert!(db.render_hierarchy().contains("Vehicle --> Automobile"));
        assert!(db.render_hierarchy_dot().contains("digraph"));
        assert!(db
            .render_class("Automobile")
            .unwrap()
            .contains("Superclasses: Vehicle"));
        let Answer::Created(Value::Ref(oid)) = db.execute("new Vehicle <7>").unwrap() else {
            panic!()
        };
        assert!(db.render_object(oid, 1).contains("id: 7"));
    }

    #[test]
    fn metrics_accumulate_through_queries() {
        let db = Mood::in_memory();
        db.execute("CREATE CLASS C TUPLE (x Integer)").unwrap();
        for i in 0..100 {
            db.execute(&format!("new C <{i}>")).unwrap();
        }
        let before = db.metrics().snapshot();
        db.execute("SELECT c FROM C c WHERE c.x > 50").unwrap();
        let delta = db.metrics().snapshot().delta(&before);
        assert!(
            delta.buffer_hits + delta.buffer_misses > 0,
            "scans touch pages"
        );
    }
}
