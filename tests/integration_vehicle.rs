//! End-to-end integration on the paper's Vehicle schema (Section 3.1):
//! SQL in, correct objects out, with every query cross-checked against a
//! brute-force evaluation over the raw extents.

use mood_core::{Answer, Mood, OptimizerConfig, Value};

/// One generated vehicle: (id, weight, cylinders, transmission, company,
/// class).
type VehicleRow = (i32, i32, i32, String, String, String);

/// Build the paper's schema with a deterministic population.
fn build() -> (Mood, Vec<VehicleRow>) {
    let db = Mood::in_memory();
    db.set_optimizer_config(OptimizerConfig::paper());
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Company TUPLE (name String(32), location String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), manufacturer REFERENCE (Company))",
        "CREATE CLASS Automobile INHERITS FROM Vehicle",
        "CREATE CLASS JapaneseAuto INHERITS FROM Automobile",
    ] {
        db.execute(ddl).unwrap();
    }
    let catalog = db.catalog();
    let companies = ["BMW", "Toyota", "Honda"];
    let mut company_oids = Vec::new();
    for c in companies {
        company_oids.push(
            catalog
                .new_object(
                    "Company",
                    Value::tuple(vec![
                        ("name", Value::string(c)),
                        ("location", Value::string("X")),
                    ]),
                )
                .unwrap(),
        );
    }
    let mut train_oids = Vec::new();
    let mut train_desc = Vec::new();
    for i in 0..12i32 {
        let cyl = 2 + (i % 4) * 2;
        let engine = catalog
            .new_object(
                "VehicleEngine",
                Value::tuple(vec![
                    ("size", Value::Integer(1000 + i * 100)),
                    ("cylinders", Value::Integer(cyl)),
                ]),
            )
            .unwrap();
        let trans = if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" };
        train_oids.push(
            catalog
                .new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![
                        ("engine", Value::Ref(engine)),
                        ("transmission", Value::string(trans)),
                    ]),
                )
                .unwrap(),
        );
        train_desc.push((cyl, trans.to_string()));
    }
    let mut rows = Vec::new();
    for i in 0..60i32 {
        let class = match i % 3 {
            0 => "Vehicle",
            1 => "Automobile",
            _ => "JapaneseAuto",
        };
        let company_idx = if class == "JapaneseAuto" {
            1 + (i as usize % 2)
        } else {
            0
        };
        let ti = (i as usize * 5) % train_oids.len();
        let weight = 700 + (i % 15) * 80;
        catalog
            .new_object(
                class,
                Value::tuple(vec![
                    ("id", Value::Integer(i)),
                    ("weight", Value::Integer(weight)),
                    ("drivetrain", Value::Ref(train_oids[ti])),
                    ("manufacturer", Value::Ref(company_oids[company_idx])),
                ]),
            )
            .unwrap();
        rows.push((
            i,
            weight,
            train_desc[ti].0,
            train_desc[ti].1.clone(),
            companies[company_idx].to_string(),
            class.to_string(),
        ));
    }
    db.collect_stats().unwrap();
    (db, rows)
}

fn ids(answer: Answer) -> Vec<i32> {
    let Answer::Rows(r) = answer else {
        panic!("not rows")
    };
    let mut out: Vec<i32> = r
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Integer(i) => *i,
            other => panic!("expected id, got {other}"),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn immediate_selection_matches_bruteforce() {
    let (db, rows) = build();
    let got = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle v WHERE v.weight > 1200")
        .unwrap());
    let mut want: Vec<i32> = rows.iter().filter(|r| r.1 > 1200).map(|r| r.0).collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn single_hop_path_matches_bruteforce() {
    let (db, rows) = build();
    let got = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle v WHERE v.drivetrain.transmission = 'MANUAL'")
        .unwrap());
    let mut want: Vec<i32> = rows
        .iter()
        .filter(|r| r.3 == "MANUAL")
        .map(|r| r.0)
        .collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn two_hop_path_matches_bruteforce() {
    let (db, rows) = build();
    let got = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle v WHERE v.drivetrain.engine.cylinders = 4")
        .unwrap());
    let mut want: Vec<i32> = rows.iter().filter(|r| r.2 == 4).map(|r| r.0).collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn example_8_1_shape_query_matches_bruteforce() {
    let (db, rows) = build();
    let got = ids(db
        .execute(
            "SELECT v.id FROM EVERY Vehicle v WHERE v.manufacturer.name = 'BMW' \
             AND v.drivetrain.engine.cylinders = 2",
        )
        .unwrap());
    let mut want: Vec<i32> = rows
        .iter()
        .filter(|r| r.4 == "BMW" && r.2 == 2)
        .map(|r| r.0)
        .collect();
    want.sort();
    assert_eq!(got, want);
    assert!(!got.is_empty(), "the workload must exercise the query");
}

#[test]
fn section_3_1_query_matches_bruteforce() {
    let (db, rows) = build();
    let got = ids(db
        .execute(
            "SELECT c.id FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v \
             WHERE c.drivetrain.transmission = 'AUTOMATIC' AND \
             c.drivetrain.engine = v AND v.cylinders > 4",
        )
        .unwrap());
    let mut want: Vec<i32> = rows
        .iter()
        .filter(|r| r.5 == "Automobile" && r.3 == "AUTOMATIC" && r.2 > 4)
        .map(|r| r.0)
        .collect();
    want.sort();
    assert_eq!(got, want);
    assert!(!got.is_empty());
}

#[test]
fn every_vs_plain_extent() {
    let (db, rows) = build();
    let plain = ids(db.execute("SELECT v.id FROM Vehicle v").unwrap());
    let every = ids(db.execute("SELECT v.id FROM EVERY Vehicle v").unwrap());
    assert_eq!(
        plain.len(),
        rows.iter().filter(|r| r.5 == "Vehicle").count()
    );
    assert_eq!(every.len(), rows.len());
    let minus = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle - JapaneseAuto v")
        .unwrap());
    assert_eq!(
        minus.len(),
        rows.iter().filter(|r| r.5 != "JapaneseAuto").count()
    );
}

#[test]
fn disjunction_and_negation_match_bruteforce() {
    let (db, rows) = build();
    let got = ids(db
        .execute(
            "SELECT v.id FROM EVERY Vehicle v WHERE \
             (v.weight < 800 OR v.weight > 1700) AND NOT v.drivetrain.engine.cylinders = 2",
        )
        .unwrap());
    let mut want: Vec<i32> = rows
        .iter()
        .filter(|r| (r.1 < 800 || r.1 > 1700) && r.2 != 2)
        .map(|r| r.0)
        .collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn plans_use_optimizer_join_methods() {
    let (db, _) = build();
    let plan = db
        .explain(
            "SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'BMW' \
             AND v.drivetrain.engine.cylinders = 2",
        )
        .unwrap();
    // Two path expressions → the less selective one deferred behind a
    // temporary, each implicit join carrying one of the four §6 methods.
    // (At this 60-object scale the cost model correctly prefers scans —
    // the paper-scale plan shapes are pinned down in
    // tests/integration_paper_examples.rs with the Table 13–15 statistics.)
    assert!(plan.contains("T1 :"), "{plan}");
    assert!(plan.contains("PathSelInfo"), "{plan}");
    let joins = plan.matches("JOIN(").count();
    assert_eq!(joins, 3, "{plan}");
    for line in plan.lines().filter(|l| {
        l.contains("_TRAVERSAL") || l.contains("HASH_PARTITION") || l.contains("JOIN_INDEX")
    }) {
        assert!(line.contains(".self"), "join condition rendered: {line}");
    }
}

#[test]
fn index_changes_plan_not_answer() {
    let (db, _) = build();
    let q = "SELECT v.id FROM Vehicle v WHERE v.weight = 1020";
    let before = ids(db.execute(q).unwrap());
    db.execute("CREATE INDEX ON Vehicle(weight)").unwrap();
    db.collect_stats().unwrap();
    let after = ids(db.execute(q).unwrap());
    assert_eq!(before, after);
}

#[test]
fn aggregates_over_paths() {
    let (db, rows) = build();
    let Answer::Rows(r) = db
        .execute(
            "SELECT v.drivetrain.transmission, COUNT(*), AVG(v.weight) \
             FROM EVERY Vehicle v GROUP BY v.drivetrain.transmission \
             ORDER BY v.drivetrain.transmission",
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(r.len(), 2);
    let auto_count = rows.iter().filter(|x| x.3 == "AUTOMATIC").count() as i32;
    assert_eq!(r.rows[0][0], Value::string("AUTOMATIC"));
    assert_eq!(r.rows[0][1], Value::Integer(auto_count));
    let auto_avg: f64 = rows
        .iter()
        .filter(|x| x.3 == "AUTOMATIC")
        .map(|x| x.1 as f64)
        .sum::<f64>()
        / auto_count as f64;
    let Value::Float(got_avg) = r.rows[0][2] else {
        panic!()
    };
    assert!((got_avg - auto_avg).abs() < 1e-9);
}

#[test]
fn order_by_descending_weight() {
    let (db, _) = build();
    let Answer::Rows(r) = db
        .execute("SELECT v.weight FROM EVERY Vehicle v ORDER BY v.weight DESC")
        .unwrap()
    else {
        panic!()
    };
    let weights: Vec<i32> = r
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Integer(i) => *i,
            _ => panic!(),
        })
        .collect();
    let mut sorted = weights.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(weights, sorted);
}

#[test]
fn all_join_methods_give_same_answer() {
    // Force each join method through the algebra layer directly and check
    // agreement with the SQL answer.
    use mood_core::algebra::{bind_class, join, JoinMethod, JoinRhs};
    let (db, rows) = build();
    let catalog = db.catalog();
    let sql_count = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle v WHERE v.drivetrain.transmission = 'MANUAL'")
        .unwrap())
    .len();
    let left = bind_class(catalog, "Vehicle", true, &[]).unwrap();
    for method in [
        JoinMethod::ForwardTraversal,
        JoinMethod::BackwardTraversal,
        JoinMethod::HashPartition,
    ] {
        let pairs = join(
            catalog,
            &left,
            "drivetrain",
            JoinRhs::Class("VehicleDriveTrain"),
            method,
        )
        .unwrap();
        let manual = pairs
            .iter()
            .filter(|(_, d)| d.value.field("transmission") == Some(&Value::string("MANUAL")))
            .count();
        assert_eq!(manual, sql_count, "{method:?}");
    }
    let _ = rows;
}

#[test]
fn dynamic_schema_evolution_is_visible_to_queries() {
    let (db, _) = build();
    db.catalog()
        .add_attribute("Vehicle", "color", mood_core::TypeDescriptor::string())
        .unwrap();
    // Old objects read color as NULL → no rows match a color predicate.
    let got = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle v WHERE v.color = 'red'")
        .unwrap());
    assert!(got.is_empty());
    // A new object with the attribute set is found.
    db.catalog()
        .new_object(
            "Vehicle",
            Value::tuple(vec![
                ("id", Value::Integer(999)),
                ("color", Value::string("red")),
            ]),
        )
        .unwrap();
    let got = ids(db
        .execute("SELECT v.id FROM EVERY Vehicle v WHERE v.color = 'red'")
        .unwrap());
    assert_eq!(got, vec![999]);
}

// ---------------------------------------------------------------------
// Path indexes (extension: the paper lists "path indices" among its access
// methods; built here as access-support relations, rebuild-on-demand)
// ---------------------------------------------------------------------

#[test]
fn path_index_answers_match_traversal() {
    let (db, rows) = build();
    let q = "SELECT v.id FROM EVERY Vehicle v WHERE v.drivetrain.engine.cylinders = 4";
    let before = ids(db.execute(q).unwrap());
    db.execute("CREATE INDEX ON Vehicle(drivetrain.engine.cylinders)")
        .unwrap();
    db.collect_stats().unwrap();
    // The optimizer now sees the path index; the plan may use it.
    let plan = db.explain(q).unwrap();
    assert!(
        plan.contains("PATH_INDEX") || plan.contains("JOIN("),
        "{plan}"
    );
    let after = ids(db.execute(q).unwrap());
    assert_eq!(before, after, "same answers with and without the index");
    let want: Vec<i32> = {
        let mut w: Vec<i32> = rows.iter().filter(|r| r.2 == 4).map(|r| r.0).collect();
        w.sort();
        w
    };
    assert_eq!(after, want);
}

#[test]
fn path_index_is_safe_when_stale_and_refreshes_on_rebuild() {
    let (db, _) = build();
    db.execute("CREATE INDEX ON Vehicle(drivetrain.engine.cylinders)")
        .unwrap();
    db.collect_stats().unwrap();
    let q = "SELECT v.id FROM EVERY Vehicle v WHERE v.drivetrain.engine.cylinders = 4";
    let before = ids(db.execute(q).unwrap());
    // A new vehicle pointing at a 4-cylinder drivetrain: the path index is
    // stale (rebuild-on-demand), so the indexed plan may miss it — but
    // answers must never contain *wrong* rows (re-verification), and after
    // a rebuild the new row must appear.
    let catalog = db.catalog();
    let trains = catalog.extent("VehicleDriveTrain").unwrap();
    // Find a drivetrain whose engine has 4 cylinders.
    let four_cyl = trains
        .iter()
        .find(|(_, v)| {
            let Some(Value::Ref(e)) = v.field("engine") else {
                return false;
            };
            let (_, ev) = catalog.get_object(*e).unwrap();
            ev.field("cylinders") == Some(&Value::Integer(4))
        })
        .map(|(oid, _)| *oid)
        .expect("a 4-cylinder drivetrain exists");
    catalog
        .new_object(
            "Vehicle",
            Value::tuple(vec![
                ("id", Value::Integer(777)),
                ("drivetrain", Value::Ref(four_cyl)),
            ]),
        )
        .unwrap();
    let stale = ids(db.execute(q).unwrap());
    for id in &stale {
        assert!(before.contains(id) || *id == 777, "no wrong rows ever");
    }
    let path: Vec<String> = ["drivetrain", "engine", "cylinders"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    catalog.rebuild_path_index("Vehicle", &path).unwrap();
    let fresh = ids(db.execute(q).unwrap());
    assert!(
        fresh.contains(&777),
        "rebuild picks up the new vehicle: {fresh:?}"
    );
}

#[test]
fn path_index_rejects_bad_paths() {
    let (db, _) = build();
    // Terminal must be atomic.
    assert!(db
        .execute("CREATE INDEX ON Vehicle(drivetrain.engine)")
        .is_err());
    // Hops must exist.
    assert!(db
        .execute("CREATE INDEX ON Vehicle(nope.engine.cylinders)")
        .is_err());
    // Hash path indexes are rejected.
    assert!(db
        .execute("CREATE HASH INDEX ON Vehicle(drivetrain.engine.cylinders)")
        .is_err());
}
