//! Lock manager: shared/exclusive locks on named resources.
//!
//! ESM gave MOOD "controlling data access and concurrency"; the kernel uses
//! it in two places the paper calls out explicitly: extent/file access
//! during query execution, and *locking a class's shared object while a
//! member function is being rewritten* (Section 2: "We provide locking for
//! this operation").
//!
//! Deadlocks are *detected*, not merely timed out. Every blocked acquire
//! records a waits-for edge (owner → resource) and walks the graph
//! (owner → awaited resource → holders → what *they* await …) before
//! sleeping. Closing a cycle picks the **youngest** member — the largest
//! `OwnerId`, since ids are allocated monotonically — as the victim: it
//! has done the least work to throw away. If the victim is the acquirer
//! itself, the acquire returns [`StorageError::Deadlock`] immediately;
//! otherwise the victim is marked doomed and woken, and *its* wait returns
//! the error. Every cycle member is a waiter by construction, so the
//! victim is always in a position to receive the verdict. The legacy
//! timeout stays as a backstop for waits no cycle explains (e.g. a holder
//! that simply never releases).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, StorageError};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Identifies a lock owner (a transaction or kernel task).
pub type OwnerId = u64;

#[derive(Default)]
struct ResourceState {
    /// Owners currently holding the lock, with their mode.
    holders: HashMap<OwnerId, LockMode>,
    /// Owners waiting (count only; fairness is FIFO-ish via condvar wakeup).
    waiters: usize,
}

impl ResourceState {
    fn compatible(&self, owner: OwnerId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(o, m)| *o == owner || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|o| *o == owner),
        }
    }
}

#[derive(Default)]
struct LockTable {
    resources: HashMap<String, ResourceState>,
    /// The waits-for graph: each blocked owner and the resource it awaits.
    /// Maintained strictly under the table mutex — an edge exists exactly
    /// while its owner sits in `wait_until`.
    waits_for: HashMap<OwnerId, String>,
    /// Victims condemned by a detection pass, with the cycle that doomed
    /// them. The victim consumes its entry when its wait wakes.
    doomed: HashMap<OwnerId, Vec<OwnerId>>,
}

/// The lock table.
pub struct LockManager {
    table: Mutex<LockTable>,
    released: Condvar,
    timeout: Duration,
    waits: AtomicU64,
    wait_timeouts: AtomicU64,
    deadlocks: AtomicU64,
}

impl LockManager {
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            table: Mutex::new(LockTable::default()),
            released: Condvar::new(),
            timeout,
            waits: AtomicU64::new(0),
            wait_timeouts: AtomicU64::new(0),
            deadlocks: AtomicU64::new(0),
        }
    }

    /// Number of times an acquire had to block on an incompatible holder.
    pub fn wait_count(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Number of acquires that gave up at the deadlock timeout.
    pub fn timeout_count(&self) -> u64 {
        self.wait_timeouts.load(Ordering::Relaxed)
    }

    /// Number of waits-for cycles detected (one per cycle, counted at the
    /// acquire that closed it).
    pub fn deadlock_count(&self) -> u64 {
        self.deadlocks.load(Ordering::Relaxed)
    }

    /// DFS over the waits-for graph starting from `start` (which is about
    /// to block): owner → awaited resource → holders → what they await…
    /// Returns the owners of a cycle through `start`, in discovery order,
    /// or `None`. Self-edges (a shared holder upgrading past itself) are
    /// skipped — holding and wanting the same resource is not a deadlock.
    fn find_cycle(table: &LockTable, start: OwnerId) -> Option<Vec<OwnerId>> {
        let mut path = vec![start];
        let mut visited = HashSet::from([start]);
        if Self::dfs(table, start, start, &mut path, &mut visited) {
            Some(path)
        } else {
            None
        }
    }

    fn dfs(
        table: &LockTable,
        current: OwnerId,
        start: OwnerId,
        path: &mut Vec<OwnerId>,
        visited: &mut HashSet<OwnerId>,
    ) -> bool {
        let Some(resource) = table.waits_for.get(&current) else {
            return false;
        };
        let Some(state) = table.resources.get(resource) else {
            return false;
        };
        for holder in state.holders.keys() {
            if *holder == current {
                continue; // upgrading past one's own shared hold
            }
            if *holder == start {
                return true;
            }
            if visited.insert(*holder) {
                path.push(*holder);
                if Self::dfs(table, *holder, start, path, visited) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// Acquire `mode` on `resource` for `owner`. A blocked acquire records
    /// a waits-for edge and runs cycle detection before sleeping; closing
    /// a cycle aborts the youngest member with [`StorageError::Deadlock`].
    /// Waits no cycle explains still time out as a backstop.
    /// Re-acquisition by the same owner upgrades Shared→Exclusive when no
    /// other holder is present.
    pub fn acquire(&self, owner: OwnerId, resource: &str, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let mut table = self.table.lock();
        loop {
            // A detection pass run by another waiter may have doomed us
            // while we slept; honour the verdict before anything else.
            if let Some(cycle) = table.doomed.remove(&owner) {
                table.waits_for.remove(&owner);
                return Err(StorageError::Deadlock {
                    victim: owner,
                    cycle,
                });
            }
            let state = table.resources.entry(resource.to_string()).or_default();
            if state.compatible(owner, mode) {
                let slot = state.holders.entry(owner).or_insert(mode);
                if mode == LockMode::Exclusive {
                    *slot = LockMode::Exclusive;
                }
                table.waits_for.remove(&owner);
                return Ok(());
            }
            table.waits_for.insert(owner, resource.to_string());
            if let Some(cycle) = Self::find_cycle(&table, owner) {
                self.deadlocks.fetch_add(1, Ordering::Relaxed);
                // Youngest member pays: owner ids are monotonic, so the
                // largest id has done the least work to throw away.
                let victim = *cycle.iter().max().expect("cycle is never empty");
                if victim == owner {
                    table.waits_for.remove(&owner);
                    return Err(StorageError::Deadlock { victim, cycle });
                }
                table.doomed.insert(victim, cycle);
                // Wake everyone; the victim will find its verdict above.
                self.released.notify_all();
            }
            let state = table.resources.entry(resource.to_string()).or_default();
            state.waiters += 1;
            self.waits.fetch_add(1, Ordering::Relaxed);
            let timed_out = self.released.wait_until(&mut table, deadline).timed_out();
            if let Some(state) = table.resources.get_mut(resource) {
                state.waiters -= 1;
            }
            if timed_out {
                table.waits_for.remove(&owner);
                table.doomed.remove(&owner);
                self.wait_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::LockTimeout {
                    resource: resource.to_string(),
                });
            }
        }
    }

    /// Release `owner`'s lock on `resource` (no-op if not held).
    pub fn release(&self, owner: OwnerId, resource: &str) {
        let mut table = self.table.lock();
        if let Some(state) = table.resources.get_mut(resource) {
            state.holders.remove(&owner);
            if state.holders.is_empty() && state.waiters == 0 {
                table.resources.remove(resource);
            }
        }
        drop(table);
        self.released.notify_all();
    }

    /// Release everything `owner` holds (transaction end). Also clears any
    /// bookkeeping left if the owner's last wait ended in an error.
    pub fn release_all(&self, owner: OwnerId) {
        let mut table = self.table.lock();
        table.resources.retain(|_, state| {
            state.holders.remove(&owner);
            !(state.holders.is_empty() && state.waiters == 0)
        });
        table.waits_for.remove(&owner);
        table.doomed.remove(&owner);
        drop(table);
        self.released.notify_all();
    }

    /// Mode currently held by `owner` on `resource`, if any.
    pub fn held(&self, owner: OwnerId, resource: &str) -> Option<LockMode> {
        self.table
            .lock()
            .resources
            .get(resource)
            .and_then(|s| s.holders.get(&owner))
            .copied()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_millis(200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.acquire(1, "extent:Vehicle", LockMode::Shared).unwrap();
        lm.acquire(2, "extent:Vehicle", LockMode::Shared).unwrap();
        assert_eq!(lm.held(1, "extent:Vehicle"), Some(LockMode::Shared));
        assert_eq!(lm.held(2, "extent:Vehicle"), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes_and_times_out() {
        let lm = LockManager::new(Duration::from_millis(30));
        lm.acquire(1, "so:Vehicle", LockMode::Exclusive).unwrap();
        let err = lm.acquire(2, "so:Vehicle", LockMode::Shared).unwrap_err();
        assert!(matches!(err, StorageError::LockTimeout { .. }));
    }

    #[test]
    fn release_unblocks_waiter() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || lm2.acquire(2, "r", LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        lm.release(1, "r");
        t.join().unwrap().unwrap();
        assert_eq!(lm.held(2, "r"), Some(LockMode::Exclusive));
    }

    #[test]
    fn reacquire_upgrades_when_sole_holder() {
        let lm = LockManager::default();
        lm.acquire(1, "r", LockMode::Shared).unwrap();
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        assert_eq!(lm.held(1, "r"), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new(Duration::from_millis(30));
        lm.acquire(1, "r", LockMode::Shared).unwrap();
        lm.acquire(2, "r", LockMode::Shared).unwrap();
        assert!(lm.acquire(1, "r", LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_all_clears_owner() {
        let lm = LockManager::default();
        lm.acquire(1, "a", LockMode::Shared).unwrap();
        lm.acquire(1, "b", LockMode::Exclusive).unwrap();
        lm.release_all(1);
        assert_eq!(lm.held(1, "a"), None);
        assert_eq!(lm.held(1, "b"), None);
        // Resources are free for others immediately.
        lm.acquire(2, "b", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn wait_and_timeout_counters_tick() {
        let lm = LockManager::new(Duration::from_millis(20));
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        assert_eq!(lm.wait_count(), 0);
        assert!(lm.acquire(2, "r", LockMode::Shared).is_err());
        assert!(lm.wait_count() >= 1);
        assert_eq!(lm.timeout_count(), 1);
    }

    #[test]
    fn deadlock_cycle_aborts_youngest_waiter() {
        // Timeouts are 30s: if these returns relied on the backstop the
        // test would blow past any sane runtime — success proves detection.
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.acquire(1, "A", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || {
            lm2.acquire(2, "B", LockMode::Exclusive).unwrap();
            let err = lm2.acquire(2, "A", LockMode::Exclusive).unwrap_err();
            lm2.release_all(2);
            err
        });
        // Let owner 2 block on A before closing the cycle.
        while lm.wait_count() == 0 {
            std::thread::yield_now();
        }
        // Closing the cycle dooms owner 2 (the youngest); its locks go and
        // this acquire is then granted — the survivor proceeds.
        lm.acquire(1, "B", LockMode::Exclusive).unwrap();
        match t.join().unwrap() {
            StorageError::Deadlock { victim, mut cycle } => {
                assert_eq!(victim, 2);
                cycle.sort_unstable();
                assert_eq!(cycle, vec![1, 2]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert_eq!(lm.deadlock_count(), 1);
        assert_eq!(lm.timeout_count(), 0, "no wait hit the backstop");
        lm.release_all(1);
    }

    #[test]
    fn acquirer_aborts_itself_when_it_is_the_youngest() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.acquire(9, "A", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || {
            lm2.acquire(1, "B", LockMode::Exclusive).unwrap();
            lm2.acquire(1, "A", LockMode::Exclusive).unwrap();
            lm2.release_all(1);
        });
        while lm.wait_count() == 0 {
            std::thread::yield_now();
        }
        // Owner 9 closes the cycle and is its youngest member: the error
        // comes back on this very call, within the detection pass.
        let err = lm.acquire(9, "B", LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, StorageError::Deadlock { victim: 9, .. }));
        lm.release_all(9); // victim aborts; the survivor finishes
        t.join().unwrap();
        assert_eq!(lm.deadlock_count(), 1);
    }

    #[test]
    fn shared_upgrade_deadlock_is_detected() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.acquire(1, "r", LockMode::Shared).unwrap();
        lm.acquire(2, "r", LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || {
            let err = lm2.acquire(2, "r", LockMode::Exclusive).unwrap_err();
            lm2.release_all(2);
            err
        });
        while lm.wait_count() == 0 {
            std::thread::yield_now();
        }
        // Both readers now want Exclusive: the classic upgrade deadlock.
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        assert!(matches!(
            t.join().unwrap(),
            StorageError::Deadlock { victim: 2, .. }
        ));
        lm.release_all(1);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        let counter = Arc::new(Mutex::new(0i32));
        let mut handles = Vec::new();
        for owner in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    lm.acquire(owner, "ctr", LockMode::Exclusive).unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        std::thread::yield_now();
                        *c = v + 1;
                    }
                    lm.release(owner, "ctr");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
