//! Query-lifecycle observability: `EXPLAIN ANALYZE` estimate-vs-actual
//! reports, the page-accounting exactness invariant, span tracing, and the
//! engine metrics registry.
//!
//! The central invariant (pinned in `actual_pages_sum_exactly_to_total`):
//! the per-operator exclusive `DiskMetrics` deltas plus the coordinator
//! stage deltas sum **exactly** to the statement's total counter delta —
//! at every parallelism level, because windows open and close on the
//! coordinating thread and chunk workers join inside one node's window.

use mood_core::cost::yao;
use mood_core::sql::{parse, Executor, Statement};
use mood_core::{Answer, Mood, OptimizerConfig, RingBuffer, Value};

/// The Section 3.1 Vehicle schema with a deterministic population; a small
/// buffer pool forces real page traffic so the accounting is non-trivial.
fn build(pool_frames: usize) -> Mood {
    build_sized(pool_frames, 64)
}

/// Like [`build`] with a chosen Vehicle-extent size. Vehicles cycle through
/// 16 drivetrains whose engines cycle through 2/4/6/8 cylinders, so
/// `cylinders = 2` always selects exactly a quarter of the extent.
fn build_sized(pool_frames: usize, n_vehicles: i32) -> Mood {
    let db = Mood::in_memory_with_pool(pool_frames);
    db.set_optimizer_config(OptimizerConfig::paper());
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Company TUPLE (name String(32), location String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), manufacturer REFERENCE (Company))",
    ] {
        db.execute(ddl).unwrap();
    }
    let catalog = db.catalog();
    let bmw = catalog
        .new_object(
            "Company",
            Value::tuple(vec![
                ("name", Value::string("BMW")),
                ("location", Value::string("Munich")),
            ]),
        )
        .unwrap();
    let mut trains = Vec::new();
    for i in 0..16i32 {
        let engine = catalog
            .new_object(
                "VehicleEngine",
                Value::tuple(vec![
                    ("size", Value::Integer(1000 + i * 100)),
                    ("cylinders", Value::Integer(2 + (i % 4) * 2)),
                ]),
            )
            .unwrap();
        trains.push(
            catalog
                .new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![
                        ("engine", Value::Ref(engine)),
                        (
                            "transmission",
                            Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                        ),
                    ]),
                )
                .unwrap(),
        );
    }
    for i in 0..n_vehicles {
        catalog
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(i)),
                    ("weight", Value::Integer(700 + (i % 15) * 80)),
                    ("drivetrain", Value::Ref(trains[i as usize % trains.len()])),
                    ("manufacturer", Value::Ref(bmw)),
                ]),
            )
            .unwrap();
    }
    db.collect_stats().unwrap();
    db
}

const PATH_QUERY: &str = "SELECT v.id FROM EVERY Vehicle v \
     WHERE v.drivetrain.engine.cylinders = 2 ORDER BY v.id";

fn select_stmt(sql: &str) -> mood_core::sql::SelectStmt {
    match parse(sql).unwrap() {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

// ----------------------------------------------------------------------
// EXPLAIN ANALYZE report shape (golden-ish: contains-based so estimate
// numbers can evolve with the cost model)
// ----------------------------------------------------------------------

#[test]
fn explain_analyze_renders_estimate_vs_actual_tree() {
    let db = build(1024);
    let report = db.explain_analyze(PATH_QUERY).unwrap();
    for needle in [
        "_TRAVERSAL(",
        "BIND(Vehicle, v)",
        "est: rows=",
        "| act: rows=",
        "rows-off=",
        "-- stages:",
        "PROJECT:",
        "ORDER BY:",
        "-- total: rows=16 pages=",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
    // The unmaterialized right side of a traversal join renders as fused.
    assert!(
        report.contains("(fused into parent)"),
        "fused node expected:\n{report}"
    );
}

#[test]
fn explain_gains_per_node_estimates() {
    let db = build(1024);
    let plan = db.explain(PATH_QUERY).unwrap();
    assert!(plan.contains("-- Node estimates"), "{plan}");
    assert!(plan.contains("sel="), "{plan}");
    assert!(plan.contains("pages="), "{plan}");
    // The paper-notation plan text is still there, untouched.
    assert!(plan.contains("BIND(Vehicle, v)"), "{plan}");
}

#[test]
fn explain_analyze_through_sql_statement() {
    let db = build(1024);
    let Answer::Plan(report) = db.execute(&format!("EXPLAIN ANALYZE {PATH_QUERY}")).unwrap()
    else {
        panic!("EXPLAIN ANALYZE must return a plan")
    };
    assert!(report.contains("act: rows="), "{report}");
}

// ----------------------------------------------------------------------
// The exactness invariant
// ----------------------------------------------------------------------

/// Per-operator exclusive page deltas + stage deltas == query total, for
/// every page counter, at parallelism 1, 2, 4 and 8 — and the term root's
/// actual row count equals the result cardinality.
#[test]
fn actual_pages_sum_exactly_to_total_across_parallelism() {
    // 4-frame pool against a 1024-vehicle extent: the working set cannot
    // stay cached, so every parallelism level does real page I/O and the
    // invariant is tested against nonzero counters.
    let db = build_sized(4, 1024);
    let stmt = select_stmt(PATH_QUERY);
    for parallelism in [1usize, 2, 4, 8] {
        let ex = Executor::new(db.catalog(), db.funcman())
            .with_config(OptimizerConfig::paper().with_parallelism(parallelism));
        let report = ex.analyze(&stmt).unwrap();
        let acc = report.accounted();
        let total = report.total;
        assert!(
            total.total_reads() + total.writes > 0,
            "tiny pool must force page traffic (parallelism {parallelism})"
        );
        assert_eq!(
            (acc.seq_pages, acc.rnd_pages, acc.idx_pages, acc.writes),
            (
                total.seq_pages,
                total.rnd_pages,
                total.idx_pages,
                total.writes
            ),
            "page accounting must telescope exactly at parallelism {parallelism}"
        );
        assert_eq!(report.result.len(), 256);
        assert_eq!(
            report.terms[0].root_actual_rows(),
            Some(report.result.len() as u64),
            "root actuals must match the cursor row count"
        );
    }
}

/// The same invariant across predicates of different selectivity (every
/// cylinders constant exercises a different row volume through the tree).
#[test]
fn accounting_invariant_holds_for_every_predicate_constant() {
    let db = build_sized(4, 1024);
    for cyl in [2, 4, 6, 8, 10] {
        let stmt = select_stmt(&format!(
            "SELECT v.id FROM EVERY Vehicle v WHERE v.drivetrain.engine.cylinders = {cyl}"
        ));
        for parallelism in [1usize, 4] {
            let ex = Executor::new(db.catalog(), db.funcman())
                .with_config(OptimizerConfig::paper().with_parallelism(parallelism));
            let report = ex.analyze(&stmt).unwrap();
            let acc = report.accounted();
            assert_eq!(
                (acc.seq_pages, acc.rnd_pages, acc.idx_pages, acc.writes),
                (
                    report.total.seq_pages,
                    report.total.rnd_pages,
                    report.total.idx_pages,
                    report.total.writes
                ),
                "cylinders={cyl} parallelism={parallelism}"
            );
            let expected = if cyl == 10 { 0 } else { 256 };
            assert_eq!(report.result.len(), expected, "cylinders={cyl}");
        }
    }
}

// ----------------------------------------------------------------------
// Estimate-vs-actual sanity on the vehicle dataset
// ----------------------------------------------------------------------

/// An indexed atomic selection touches no more data pages than the
/// c(n,m,r)-style bound predicts: fetching `r` of `n` records spread over
/// `m` pages costs at most `yao(n, m, r)` page reads (plus the B-tree
/// probe), and the row estimate is close.
#[test]
fn indexed_selection_stays_within_yao_bound() {
    // Large enough that the §8.1 index-count inequality picks the index
    // over a scan for a unique-key equality.
    let db = build_sized(64, 4096);
    db.execute("CREATE INDEX ON Vehicle(id)").unwrap();
    db.collect_stats().unwrap();
    let sql = "SELECT v.weight FROM Vehicle v WHERE v.id = 777";
    assert!(
        db.explain(sql).unwrap().contains("INDSEL("),
        "selection must be index-served:\n{}",
        db.explain(sql).unwrap()
    );
    let stmt = select_stmt(sql);
    let ex = Executor::new(db.catalog(), db.funcman()).with_config(OptimizerConfig::paper());
    let report = ex.analyze(&stmt).unwrap();
    let node = report.terms[0]
        .nodes
        .iter()
        .find(|n| n.est.label.starts_with("INDSEL("))
        .expect("INDSEL node in the report");
    let actual = node.actual.expect("INDSEL records actuals");
    assert_eq!(actual.rows, 1, "unique-key equality selects one vehicle");
    // Stats for the bound: fetching r of n records spread over nbpages.
    let stats = db.collect_stats().unwrap();
    let vinfo = stats.class("Vehicle").unwrap();
    let bound = yao(4096.0, vinfo.nbpages as f64, actual.rows as f64);
    let actual_pages = node.exclusive.total_reads() + node.exclusive.writes;
    // + btree height/leaf slack for the probe itself.
    assert!(
        (actual_pages as f64) <= bound.ceil() + 4.0,
        "INDSEL touched {actual_pages} pages, yao bound {bound:.2}"
    );
    assert!(
        mood_core::sql::misestimation(node.est.rows, actual.rows) <= 4.0,
        "row estimate {} vs actual {}",
        node.est.rows,
        actual.rows
    );
}

/// The chosen join strategy's measured pages stay within a small factor of
/// the §6 model's estimate (the model is a worst-case no-buffer-hit bound,
/// so actual ≤ factor × estimate).
#[test]
fn join_actual_pages_within_factor_of_estimate() {
    let db = build(4);
    let stmt = select_stmt(PATH_QUERY);
    let ex = Executor::new(db.catalog(), db.funcman()).with_config(OptimizerConfig::paper());
    let report = ex.analyze(&stmt).unwrap();
    let term = &report.terms[0];
    // Whole-plan: actual total pages vs the summed node estimates.
    let est_pages: f64 = term.nodes.iter().map(|n| n.est.pages).sum();
    let actual_pages = (report.total.total_reads() + report.total.writes) as f64;
    assert!(est_pages > 0.0, "model must estimate page work");
    assert!(
        actual_pages <= est_pages * 10.0 + 16.0,
        "actual {actual_pages} pages vs estimated {est_pages:.1}"
    );
    // Per-join: each join node's own (exclusive) pages against its estimate.
    let join_methods = [
        "FORWARD_TRAVERSAL(",
        "BACKWARD_TRAVERSAL(",
        "BINARY_JOIN_INDEX(",
        "HASH_PARTITION(",
    ];
    for n in term
        .nodes
        .iter()
        .filter(|n| join_methods.iter().any(|m| n.est.label.starts_with(m)))
    {
        let ex_pages = (n.exclusive.total_reads() + n.exclusive.writes) as f64;
        assert!(
            ex_pages <= n.est.pages * 10.0 + 16.0,
            "{}: actual {ex_pages} vs estimated {:.1}",
            n.est.label,
            n.est.pages
        );
    }
}

// ----------------------------------------------------------------------
// Tracing and the metrics registry
// ----------------------------------------------------------------------

#[test]
fn spans_cover_the_query_lifecycle() {
    let db = build(1024);
    let ring = RingBuffer::new(64);
    db.tracer().subscribe(ring.clone());
    db.execute(PATH_QUERY).unwrap();
    for name in ["parse", "bind", "optimize", "execute"] {
        assert!(
            !ring.named(name).is_empty(),
            "missing {name} span: {:?}",
            ring.records().iter().map(|r| &r.name).collect::<Vec<_>>()
        );
    }
    assert!(
        ring.records().iter().any(|r| r.name.starts_with("op:")),
        "per-operator spans expected"
    );
    let exec = &ring.named("execute")[0];
    assert_eq!(exec.rows, Some(16), "execute span carries the row count");
}

#[test]
fn show_metrics_exposes_engine_registry() {
    let db = build(1024);
    db.execute(PATH_QUERY).unwrap();
    let Answer::Rows(r) = db.execute("SHOW METRICS").unwrap() else {
        panic!("SHOW METRICS must return rows")
    };
    let metrics: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    for key in [
        "disk.rnd_pages",
        "buffer.hits",
        "buffer.wait_ns",
        "wal.appends",
        "wal.fsyncs",
        "lock.waits",
        "operator.BIND",
    ] {
        assert!(
            metrics.iter().any(|m| m.contains(key)),
            "missing {key} in {metrics:?}"
        );
    }
}

#[test]
fn operator_totals_accumulate_across_statements() {
    let db = build(1024);
    db.execute(PATH_QUERY).unwrap();
    let first = db.engine_metrics();
    db.execute(PATH_QUERY).unwrap();
    let second = db.engine_metrics();
    let calls = |m: &mood_core::EngineMetrics| {
        m.operators
            .iter()
            .find(|(k, _)| k == "BIND")
            .map(|(_, t)| t.invocations)
            .unwrap_or(0)
    };
    assert!(
        calls(&second) > calls(&first),
        "BIND totals must grow: {} then {}",
        calls(&first),
        calls(&second)
    );
}
