//! Schema definitions: classes, attributes, method signatures.
//!
//! "The catalog contains the definition of classes, types, and member
//! functions in a structure similar to a compiler symbol table." (Section 2)
//! The three record kinds mirror the paper's `MoodsType`, `MoodsAttribute`
//! and `MoodsFunction` classes.

use std::fmt;

use mood_datamodel::TypeDescriptor;
use mood_storage::FileId;

/// Numeric type identifier — the paper's `typeId(char*)` / `typeName(int)`
/// pair works over these.
pub type TypeId = u32;

/// Whether a definition is a *class* (has an extent, identity semantics,
/// participates in the hierarchy) or a *type* (copy semantics, no extent) —
/// the distinction Section 2 draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    Class,
    Type,
}

/// One attribute — a `MoodsAttribute` record.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    pub name: String,
    pub ty: TypeDescriptor,
}

impl AttributeDef {
    pub fn new(name: impl Into<String>, ty: TypeDescriptor) -> Self {
        AttributeDef {
            name: name.into(),
            ty,
        }
    }
}

/// A member-function signature — a `MoodsFunction` record. The body is not
/// here: it lives with the Function Manager (the paper keeps only "name,
/// return type, and names and types of their parameters" in the catalog).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    pub name: String,
    pub return_type: TypeDescriptor,
    pub params: Vec<(String, TypeDescriptor)>,
}

impl MethodSig {
    pub fn new(
        name: impl Into<String>,
        return_type: TypeDescriptor,
        params: Vec<(&str, TypeDescriptor)>,
    ) -> Self {
        MethodSig {
            name: name.into(),
            return_type,
            params: params
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// The signature string used to locate the function in the catalog:
    /// class name + method name + parameter types (Section 2's "signature
    /// of the function is created by using class name ... and its parameter
    /// list").
    pub fn signature_for(&self, class: &str) -> String {
        let params: Vec<String> = self.params.iter().map(|(_, t)| t.to_string()).collect();
        format!("{class}::{}({})", self.name, params.join(", "))
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(n, t)| format!("{n} {t}"))
            .collect();
        write!(
            f,
            "{} ({}) {}",
            self.name,
            params.join(", "),
            self.return_type
        )
    }
}

/// A class or type definition — a `MoodsType` record.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    pub name: String,
    pub type_id: TypeId,
    pub kind: ClassKind,
    /// Own (non-inherited) attributes, in declaration order.
    pub attributes: Vec<AttributeDef>,
    /// Direct superclasses (multiple inheritance), in declaration order.
    pub superclasses: Vec<String>,
    /// Own method signatures.
    pub methods: Vec<MethodSig>,
    /// The default extent's heap file (classes only).
    pub extent: Option<FileId>,
}

impl ClassDef {
    /// The tuple type formed by this class's *own* attributes.
    pub fn own_tuple_type(&self) -> TypeDescriptor {
        TypeDescriptor::Tuple(
            self.attributes
                .iter()
                .map(|a| (a.name.clone(), a.ty.clone()))
                .collect(),
        )
    }

    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    pub fn method(&self, name: &str) -> Option<&MethodSig> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// Builder for [`ClassDef`] used by DDL execution and tests.
#[derive(Debug, Clone)]
pub struct ClassBuilder {
    name: String,
    kind: ClassKind,
    attributes: Vec<AttributeDef>,
    superclasses: Vec<String>,
    methods: Vec<MethodSig>,
}

impl ClassBuilder {
    pub fn class(name: impl Into<String>) -> Self {
        ClassBuilder {
            name: name.into(),
            kind: ClassKind::Class,
            attributes: Vec::new(),
            superclasses: Vec::new(),
            methods: Vec::new(),
        }
    }

    pub fn value_type(name: impl Into<String>) -> Self {
        let mut b = Self::class(name);
        b.kind = ClassKind::Type;
        b
    }

    pub fn attribute(mut self, name: impl Into<String>, ty: TypeDescriptor) -> Self {
        self.attributes.push(AttributeDef::new(name, ty));
        self
    }

    pub fn inherits(mut self, superclass: impl Into<String>) -> Self {
        self.superclasses.push(superclass.into());
        self
    }

    pub fn method(mut self, sig: MethodSig) -> Self {
        self.methods.push(sig);
        self
    }

    pub(crate) fn build(self, type_id: TypeId, extent: Option<FileId>) -> ClassDef {
        ClassDef {
            name: self.name,
            type_id,
            kind: self.kind,
            attributes: self.attributes,
            superclasses: self.superclasses,
            methods: self.methods,
            extent,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn kind(&self) -> ClassKind {
        self.kind
    }

    pub fn superclass_names(&self) -> &[String] {
        &self.superclasses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_parts() {
        let def = ClassBuilder::class("Vehicle")
            .attribute("id", TypeDescriptor::integer())
            .attribute("weight", TypeDescriptor::integer())
            .inherits("Thing")
            .method(MethodSig::new(
                "lbweight",
                TypeDescriptor::integer(),
                vec![],
            ))
            .build(7, Some(FileId(3)));
        assert_eq!(def.name, "Vehicle");
        assert_eq!(def.type_id, 7);
        assert_eq!(def.attributes.len(), 2);
        assert_eq!(def.superclasses, vec!["Thing"]);
        assert_eq!(def.methods.len(), 1);
        assert_eq!(def.extent, Some(FileId(3)));
        assert_eq!(def.kind, ClassKind::Class);
    }

    #[test]
    fn value_type_has_no_extent_by_convention() {
        let def = ClassBuilder::value_type("Money")
            .attribute("amount", TypeDescriptor::float())
            .build(9, None);
        assert_eq!(def.kind, ClassKind::Type);
        assert_eq!(def.extent, None);
    }

    #[test]
    fn signature_string_matches_paper_style() {
        let sig = MethodSig::new(
            "CalculatePrice",
            TypeDescriptor::integer(),
            vec![
                ("Price", TypeDescriptor::integer()),
                ("Rate", TypeDescriptor::float()),
            ],
        );
        assert_eq!(
            sig.signature_for("Car"),
            "Car::CalculatePrice(Integer, Float)"
        );
    }

    #[test]
    fn own_tuple_type_reflects_attributes() {
        let def = ClassBuilder::class("Employee")
            .attribute("ssno", TypeDescriptor::integer())
            .attribute("name", TypeDescriptor::string())
            .build(1, None);
        assert_eq!(
            def.own_tuple_type(),
            TypeDescriptor::tuple(vec![
                ("ssno", TypeDescriptor::integer()),
                ("name", TypeDescriptor::string()),
            ])
        );
    }

    #[test]
    fn attribute_and_method_lookup() {
        let def = ClassBuilder::class("C")
            .attribute("a", TypeDescriptor::integer())
            .method(MethodSig::new("m", TypeDescriptor::boolean(), vec![]))
            .build(1, None);
        assert!(def.attribute("a").is_some());
        assert!(def.attribute("b").is_none());
        assert!(def.method("m").is_some());
        assert!(def.method("x").is_none());
    }
}
