//! # mood-datamodel — the MOOD data model
//!
//! Section 2 / 3.1 of the paper: six basic types (Integer, Float,
//! LongInteger, String, Char, Boolean) closed under four constructors
//! (Tuple, Set, List, Reference), with run-time type information carried to
//! execution (the catalog's `MoodsType` records store these descriptors).
//!
//! * [`types`] — [`TypeDescriptor`] / [`BasicType`];
//! * [`value`] — runtime [`Value`]s with coercing comparison;
//! * [`codec`] — the stored binary representation (self-describing, as the
//!   kernel↔MoodView cursor protocol requires);
//! * [`keys`] — order-preserving index-key encoding;
//! * [`deep`] — deep equality with dereferencing (Table 3's `DupElim`).

pub mod codec;
pub mod deep;
pub mod keys;
pub mod types;
pub mod value;

pub use codec::{decode_type, decode_value, encode_type, encode_value, CodecError};
pub use deep::{deep_eq, Resolver};
pub use keys::{encode_key, NotAtomic};
pub use types::{BasicType, TypeDescriptor};
pub use value::Value;
