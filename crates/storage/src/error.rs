//! Error type shared by all storage-layer operations.

use std::fmt;

use crate::oid::{FileId, Oid, PageId};

/// Errors produced by the storage manager.
///
/// Mirrors the error surface ESM exposed to the MOOD kernel: I/O failures,
/// structural corruption, capacity limits, lock conflicts and recovery
/// problems. Every variant carries enough context to be reported to the user
/// by the kernel's `Exception` machinery without further lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying byte store failed (file-system error, simulated fault).
    Io(String),
    /// A page id was out of range for the file.
    PageOutOfRange {
        file: FileId,
        page: PageId,
        pages: u32,
    },
    /// A file id is unknown to the disk manager.
    UnknownFile(FileId),
    /// An OID did not resolve to a live record.
    DanglingOid(Oid),
    /// A record was too large to ever fit in a page.
    RecordTooLarge { size: usize, max: usize },
    /// A slotted-page invariant was violated (corruption).
    Corrupt(String),
    /// A structural-corruption report annotated with the page it came from
    /// (see [`StorageError::locate`]).
    CorruptAt {
        file: FileId,
        page: PageId,
        detail: String,
    },
    /// A page's on-disk checksum trailer did not match its contents — the
    /// disk returned bytes the engine never wrote (bit rot, torn write).
    PageCorrupt {
        file: FileId,
        page: PageId,
        expected: u32,
        actual: u32,
    },
    /// The buffer pool had no evictable frame (everything pinned).
    PoolExhausted,
    /// A lock could not be granted before the deadlock timeout.
    LockTimeout { resource: String },
    /// A lock wait closed a cycle in the waits-for graph; the youngest
    /// participant (`victim`) was chosen to abort. Owner ids are the
    /// transaction ids of every cycle member, in discovery order.
    Deadlock { victim: u64, cycle: Vec<u64> },
    /// The engine is in read-only degraded mode after a persistent write
    /// failure; writes are refused until `heal()` clears the condition.
    Degraded { reason: String },
    /// An operation was attempted on an aborted/finished transaction.
    TxnFinished,
    /// The operation is illegal while a transaction is open (e.g. a
    /// checkpoint would truncate the log under a live transaction).
    TxnActive,
    /// The write-ahead log is unreadable past the given offset.
    WalCorrupt { offset: u64 },
    /// A key was required to be unique but already exists in the index.
    DuplicateKey,
    /// Key not found where the caller required presence.
    KeyNotFound,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
            StorageError::PageOutOfRange { file, page, pages } => {
                write!(
                    f,
                    "page {page:?} out of range for file {file:?} ({pages} pages)"
                )
            }
            StorageError::UnknownFile(id) => write!(f, "unknown file {id:?}"),
            StorageError::DanglingOid(oid) => write!(f, "dangling OID {oid}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds the {max}-byte page capacity"
                )
            }
            StorageError::Corrupt(msg) => write!(f, "storage corruption: {msg}"),
            StorageError::CorruptAt { file, page, detail } => {
                write!(
                    f,
                    "storage corruption in file {file:?} page {page:?}: {detail}"
                )
            }
            StorageError::PageCorrupt {
                file,
                page,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "checksum mismatch on file {file:?} page {page:?}: \
                     expected {expected:#010x}, got {actual:#010x}"
                )
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::LockTimeout { resource } => {
                write!(f, "lock wait timed out on {resource}")
            }
            StorageError::Deadlock { victim, cycle } => {
                write!(f, "deadlock detected: victim {victim}, cycle {cycle:?}")
            }
            StorageError::Degraded { reason } => {
                write!(f, "engine is read-only (degraded mode): {reason}")
            }
            StorageError::TxnFinished => write!(f, "transaction already committed or aborted"),
            StorageError::TxnActive => write!(f, "operation not allowed while a transaction is active"),
            StorageError::WalCorrupt { offset } => {
                write!(f, "write-ahead log unreadable at offset {offset}")
            }
            StorageError::DuplicateKey => write!(f, "duplicate key in unique index"),
            StorageError::KeyNotFound => write!(f, "key not found"),
        }
    }
}

impl StorageError {
    /// Attach a page location to a bare `Corrupt` report. Errors that
    /// already carry their own location (or are not corruption at all)
    /// pass through unchanged, so this is safe to apply at any boundary
    /// that knows which page it was reading.
    pub fn locate(self, file: FileId, page: PageId) -> Self {
        match self {
            StorageError::Corrupt(detail) => StorageError::CorruptAt { file, page, detail },
            other => other,
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StorageError::RecordTooLarge {
            size: 9000,
            max: 4000,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4000"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(ref m) if m.contains("boom")));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::DuplicateKey, StorageError::DuplicateKey);
        assert_ne!(StorageError::DuplicateKey, StorageError::KeyNotFound);
    }

    #[test]
    fn locate_annotates_only_bare_corruption() {
        let located =
            StorageError::Corrupt("bad slot".into()).locate(FileId(3), PageId(7));
        assert_eq!(
            located,
            StorageError::CorruptAt {
                file: FileId(3),
                page: PageId(7),
                detail: "bad slot".into()
            }
        );
        assert!(located.to_string().contains("FileId(3)"));
        // Non-corruption errors pass through untouched.
        let other = StorageError::DuplicateKey.locate(FileId(1), PageId(1));
        assert_eq!(other, StorageError::DuplicateKey);
        // Already-located corruption keeps its original page.
        let kept = located.clone().locate(FileId(9), PageId(9));
        assert_eq!(kept, located);
    }
}
