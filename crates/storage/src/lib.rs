//! # mood-storage — the ESM substrate for MOOD
//!
//! The METU Object-Oriented DBMS was built on the Exodus Storage Manager
//! (ESM), which provided storage management, concurrency control, and backup
//! and recovery. This crate is the from-scratch Rust substitute: everything
//! the MOOD kernel needed from ESM, with the addition of *instrumentation*
//! — every page access is counted and classified (sequential / random /
//! index) so the reproduction can compare measured access patterns against
//! the paper's analytic cost model (Sections 4–6).
//!
//! Components:
//!
//! * [`disk`] — raw block stores (in-memory, file-backed, fault-injecting);
//! * [`page`] — 4 KB pages with a slotted record layout;
//! * [`buffer`] — a clock-replacement buffer pool;
//! * [`heap`] — heap files of records with physical OIDs and ESM-style
//!   forwarding;
//! * [`btree`] — a disk-resident B+-tree exposing the Table 9 statistics;
//! * [`hash`] — a static hash index with overflow chaining;
//! * [`lock`] — a shared/exclusive lock manager with timeout deadlock
//!   resolution;
//! * [`wal`] — a redo-only write-ahead log with crash recovery;
//! * [`metrics`] — access counters plus the Table 10 physical disk model.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod exec;
pub mod hash;
pub mod heap;
pub mod lock;
pub mod metrics;
pub mod oid;
pub mod page;
pub mod wal;

pub use btree::{BTree, BTreeStats};
pub use buffer::BufferPool;
pub use disk::{Disk, FaultyDisk, FileDisk, MemDisk};
pub use error::{Result, StorageError};
pub use exec::{chunk_ranges, run_chunked, ExecutionConfig};
pub use hash::HashIndex;
pub use heap::HeapFile;
pub use lock::{LockManager, LockMode, OwnerId};
pub use metrics::{AccessKind, DiskMetrics, MetricsSnapshot, PhysicalParams};
pub use oid::{FileId, Oid, PageId, SlotId};
pub use page::{Page, SlottedPage, PAGE_SIZE};
pub use wal::{FileLog, MemLog, TxnId, Wal};

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Everything a MOOD kernel instance needs from its storage layer, wired
/// together: a disk, a buffer pool, a lock manager, a WAL and the shared
/// metrics. This is the handle the catalog and algebra layers hold.
///
/// Index handles are cached per file id so every caller shares one
/// [`BTree`]/[`HashIndex`] instance — and therefore its writer lock.
pub struct StorageManager {
    pool: Arc<BufferPool>,
    locks: Arc<LockManager>,
    wal: Arc<Wal>,
    metrics: DiskMetrics,
    btrees: Mutex<HashMap<FileId, Arc<BTree>>>,
    hashes: Mutex<HashMap<FileId, Arc<HashIndex>>>,
}

impl StorageManager {
    /// An in-memory storage manager (tests, benches, examples).
    pub fn in_memory() -> Self {
        Self::in_memory_with_pool(1024)
    }

    /// In-memory with an explicit buffer-pool size in frames — benches size
    /// this small to reproduce the paper's no-buffer-hit worst cases.
    pub fn in_memory_with_pool(frames: usize) -> Self {
        let metrics = DiskMetrics::new();
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, frames, metrics.clone()));
        StorageManager {
            pool,
            locks: Arc::new(LockManager::default()),
            wal: Arc::new(Wal::new(Box::new(MemLog::new()))),
            metrics,
            btrees: Mutex::new(HashMap::new()),
            hashes: Mutex::new(HashMap::new()),
        }
    }

    /// A file-backed storage manager rooted at `dir` (pages under
    /// `dir/pages`, log at `dir/wal.log`).
    pub fn on_disk(dir: impl AsRef<std::path::Path>, frames: usize) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let metrics = DiskMetrics::new();
        let disk: Arc<dyn Disk> = Arc::new(FileDisk::open(dir.join("pages"))?);
        let pool = Arc::new(BufferPool::new(disk, frames, metrics.clone()));
        let wal = Wal::new(Box::new(FileLog::open(dir.join("wal.log"))?));
        Ok(StorageManager {
            pool,
            locks: Arc::new(LockManager::default()),
            wal: Arc::new(wal),
            metrics,
            btrees: Mutex::new(HashMap::new()),
            hashes: Mutex::new(HashMap::new()),
        })
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    /// Create a new heap file on this manager.
    pub fn create_heap(&self) -> Result<HeapFile> {
        HeapFile::create(self.pool.clone())
    }

    /// Open an existing heap file.
    pub fn open_heap(&self, file: FileId) -> HeapFile {
        HeapFile::open(self.pool.clone(), file)
    }

    /// Create a B+-tree index (the shared handle is cached).
    pub fn create_btree(&self, unique: bool) -> Result<Arc<BTree>> {
        let tree = Arc::new(BTree::create(self.pool.clone(), unique)?);
        self.btrees.lock().insert(tree.file_id(), tree.clone());
        Ok(tree)
    }

    /// Open an existing B+-tree index; all callers share one handle (and
    /// its writer lock).
    pub fn open_btree(&self, file: FileId) -> Arc<BTree> {
        self.btrees
            .lock()
            .entry(file)
            .or_insert_with(|| Arc::new(BTree::open(self.pool.clone(), file)))
            .clone()
    }

    /// Create a hash index with the given bucket count (handle cached).
    pub fn create_hash(&self, buckets: u32) -> Result<Arc<HashIndex>> {
        let h = Arc::new(HashIndex::create(self.pool.clone(), buckets)?);
        self.hashes.lock().insert(h.file_id(), h.clone());
        Ok(h)
    }

    /// Open an existing hash index; all callers share one handle.
    pub fn open_hash(&self, file: FileId, buckets: u32) -> Arc<HashIndex> {
        self.hashes
            .lock()
            .entry(file)
            .or_insert_with(|| Arc::new(HashIndex::open(self.pool.clone(), file, buckets)))
            .clone()
    }

    /// Drop a cached index handle (call when the index file is deleted).
    pub fn forget_index(&self, file: FileId) {
        self.btrees.lock().remove(&file);
        self.hashes.lock().remove(&file);
    }

    /// Flush all dirty pages and truncate the log (checkpoint).
    pub fn checkpoint(&self) -> Result<()> {
        self.pool.flush_all()?;
        self.wal.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_wires_components() {
        let sm = StorageManager::in_memory();
        let heap = sm.create_heap().unwrap();
        let oid = heap.insert(b"kernel object").unwrap();
        assert_eq!(heap.get(oid).unwrap(), b"kernel object");

        let idx = sm.create_btree(false).unwrap();
        idx.insert(b"key", oid).unwrap();
        assert_eq!(idx.lookup(b"key").unwrap(), vec![oid]);

        let h = sm.create_hash(16).unwrap();
        h.insert(b"key", oid).unwrap();
        assert_eq!(h.lookup(b"key").unwrap(), vec![oid]);

        assert!(sm.metrics().snapshot().total_reads() > 0);
        sm.checkpoint().unwrap();
    }

    #[test]
    fn reopen_heap_by_file_id() {
        let sm = StorageManager::in_memory();
        let heap = sm.create_heap().unwrap();
        let oid = heap.insert(b"persist me").unwrap();
        let fid = heap.file_id();
        drop(heap);
        let again = sm.open_heap(fid);
        assert_eq!(again.get(oid).unwrap(), b"persist me");
    }

    #[test]
    fn on_disk_manager_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mood-sm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fid;
        let oid;
        {
            let sm = StorageManager::on_disk(&dir, 64).unwrap();
            let heap = sm.create_heap().unwrap();
            oid = heap.insert(b"durable").unwrap();
            fid = heap.file_id();
            sm.checkpoint().unwrap();
        }
        {
            let sm = StorageManager::on_disk(&dir, 64).unwrap();
            let heap = sm.open_heap(fid);
            assert_eq!(heap.get(oid).unwrap(), b"durable");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
