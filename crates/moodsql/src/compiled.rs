//! Bridge from MOODSQL AST expressions to the Function Manager's compiled
//! register programs.
//!
//! The paper compiles method bodies once at definition time (Section 2);
//! this module applies the same discipline to the query hot path. A WHERE
//! predicate or projection column that references exactly one range
//! variable is lowered into a [`Program`] (Sql mode, so semantics — Null
//! propagation, n-ary And/Or folds, schema-evolution Nulls, error texts —
//! are byte-identical to `Executor::eval_expr`). Anything the bridge cannot
//! express (method calls, aggregates, multi-variable predicates, bare
//! range variables) returns `None` and the executor falls back to the
//! interpreter, so compilation is a pure fast path, never a behavior
//! change.

use std::collections::HashMap;

use mood_catalog::Catalog;
use mood_datamodel::{BasicType, Resolver, TypeDescriptor, Value};
use mood_storage::Oid;
use mood_funcman::expr::{BinOp, UnOp};
use mood_funcman::{
    compile_program, CompileOpts, CompiledPredicate, EvalCtx, Exception, ExceptionKind, Expr as FExpr,
    Program, Registers, StaticKind,
};

use crate::ast::{CmpOp, Expr, Lit};
use crate::error::{Result, SqlError};
use crate::exec::Row;

/// Dereference through the catalog during compiled path traversal — the
/// same lookups `Executor::eval_path` performs via `catalog.get_object`.
pub(crate) struct CatalogResolver<'a> {
    pub catalog: &'a Catalog,
}

impl Resolver for CatalogResolver<'_> {
    fn resolve(&self, oid: Oid) -> Option<Value> {
        self.catalog.get_object(oid).ok().map(|(_, v)| v)
    }
}

/// Map a program exception back onto the interpreter's error surface:
/// `Query` carries `eval_expr`'s own message text verbatim (re-wrapped as
/// an execution error), everything else surfaces as a method exception —
/// exactly what `?` on a funcman call produces in the interpreted path.
pub(crate) fn sql_err(e: Exception) -> SqlError {
    if e.kind == ExceptionKind::Query {
        SqlError::Exec(e.message)
    } else {
        SqlError::Exception(e)
    }
}

/// A compiled predicate bound to the range variable it reads.
pub(crate) struct RowPred {
    pub var: String,
    pred: CompiledPredicate,
}

impl RowPred {
    /// Evaluate against a row; Null filters out, per SQL.
    pub fn matches(&self, catalog: &Catalog, row: &Row, regs: &mut Registers) -> Result<bool> {
        let Some(bound) = row.get(&self.var) else {
            return Err(SqlError::Exec(format!(
                "unbound range variable {}",
                self.var
            )));
        };
        let resolver = CatalogResolver { catalog };
        let ctx = EvalCtx {
            self_value: &bound.value,
            args: &[],
            resolver: Some(&resolver),
            dispatcher: None,
        };
        self.pred.matches(regs, &ctx).map_err(sql_err)
    }
}

/// A compiled projection column bound to its range variable.
pub(crate) struct RowProg {
    pub var: String,
    prog: Program,
}

impl RowProg {
    pub fn eval(&self, catalog: &Catalog, row: &Row, regs: &mut Registers) -> Result<Value> {
        let Some(bound) = row.get(&self.var) else {
            return Err(SqlError::Exec(format!(
                "unbound range variable {}",
                self.var
            )));
        };
        let resolver = CatalogResolver { catalog };
        let ctx = EvalCtx {
            self_value: &bound.value,
            args: &[],
            resolver: Some(&resolver),
            dispatcher: None,
        };
        self.prog.run(regs, &ctx).map_err(sql_err)
    }
}

/// A plan predicate prepared once at plan time: parsed from the plan's
/// predicate text, plus the compiled form when the bridge can express it.
pub(crate) struct PreparedPred {
    pub expr: Expr,
    pub compiled: Option<RowPred>,
}

/// Compile a WHERE expression into a [`RowPred`], or `None` if any part
/// falls outside the compilable subset.
pub(crate) fn compile_pred(
    catalog: &Catalog,
    var_class: &HashMap<String, String>,
    expr: &Expr,
) -> Option<RowPred> {
    let (var, program) = compile_expr(catalog, var_class, expr)?;
    Some(RowPred {
        var,
        pred: CompiledPredicate::new(program),
    })
}

/// Compile a projection column into a [`RowProg`], or `None`.
pub(crate) fn compile_proj(
    catalog: &Catalog,
    var_class: &HashMap<String, String>,
    expr: &Expr,
) -> Option<RowProg> {
    let (var, prog) = compile_expr(catalog, var_class, expr)?;
    Some(RowProg { var, prog })
}

fn compile_expr(
    catalog: &Catalog,
    var_class: &HashMap<String, String>,
    expr: &Expr,
) -> Option<(String, Program)> {
    let var = find_var(expr)?.to_string();
    let class = var_class.get(&var)?.clone();
    let lowered = bridge(expr, &var)?;
    let attr_kind = |segs: &[String]| static_kind_for(catalog, &class, segs);
    let root_slot = |attr: &str| root_slot_for(catalog, &class, attr);
    let opts = CompileOpts::sql(&var)
        .with_attr_kind(&attr_kind)
        .with_root_slot(&root_slot);
    let program = compile_program(&lowered, &opts).ok()?;
    Some((var, program))
}

/// The first range variable an expression reads. The bridge then verifies
/// every other path reads the same one.
fn find_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path(p) => Some(&p.var),
        Expr::Literal(_) | Expr::Agg { .. } | Expr::MethodCall { .. } => None,
        Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
            find_var(left).or_else(|| find_var(right))
        }
        Expr::Between { expr, lo, hi } => find_var(expr)
            .or_else(|| find_var(lo))
            .or_else(|| find_var(hi)),
        Expr::And(parts) | Expr::Or(parts) => parts.iter().find_map(find_var),
        Expr::Not(inner) => find_var(inner),
    }
}

/// Lower an AST expression to a funcman [`FExpr`] rooted at `self`. `None`
/// marks the expression as uncompilable (interpreter fallback).
fn bridge(e: &Expr, var: &str) -> Option<FExpr> {
    match e {
        Expr::Path(p) => {
            // A bare range variable evaluates to the bound object's Ref,
            // which a program running against the tuple value cannot see.
            if p.var != var || p.segments.is_empty() {
                return None;
            }
            let mut segs = Vec::with_capacity(p.segments.len() + 1);
            segs.push("self".to_string());
            segs.extend(p.segments.iter().cloned());
            Some(FExpr::Path(segs))
        }
        Expr::Literal(l) => Some(match l {
            Lit::Int(i) => FExpr::int(*i),
            Lit::Float(x) => FExpr::Lit(Value::Float(*x)),
            Lit::Str(s) => FExpr::Lit(Value::String(s.clone())),
            Lit::Bool(b) => FExpr::Lit(Value::Boolean(*b)),
            Lit::Null => FExpr::Lit(Value::Null),
        }),
        Expr::Compare { op, left, right } => {
            let l = bridge(left, var)?;
            let r = bridge(right, var)?;
            let op = match op {
                CmpOp::Eq => BinOp::Eq,
                CmpOp::Ne => BinOp::Ne,
                CmpOp::Lt => BinOp::Lt,
                CmpOp::Le => BinOp::Le,
                CmpOp::Gt => BinOp::Gt,
                CmpOp::Ge => BinOp::Ge,
            };
            Some(FExpr::Binary(op, Box::new(l), Box::new(r)))
        }
        Expr::Between { expr, lo, hi } => Some(FExpr::Between(
            Box::new(bridge(expr, var)?),
            Box::new(bridge(lo, var)?),
            Box::new(bridge(hi, var)?),
        )),
        // Left-deep chains of the same operator: the compiler re-flattens
        // them into the interpreter's n-ary fold, preserving evaluation
        // order and Null bookkeeping.
        Expr::And(parts) => nary(parts, var, BinOp::And),
        Expr::Or(parts) => nary(parts, var, BinOp::Or),
        Expr::Not(inner) => Some(FExpr::Unary(UnOp::Not, Box::new(bridge(inner, var)?))),
        Expr::Arith { op, left, right } => {
            let l = bridge(left, var)?;
            let r = bridge(right, var)?;
            let op = match op {
                '+' => BinOp::Add,
                '-' => BinOp::Sub,
                '*' => BinOp::Mul,
                '/' => BinOp::Div,
                '%' => BinOp::Rem,
                _ => return None,
            };
            Some(FExpr::Binary(op, Box::new(l), Box::new(r)))
        }
        // Late-bound dispatch and grouped evaluation stay interpreted.
        Expr::MethodCall { .. } | Expr::Agg { .. } => None,
    }
}

fn nary(parts: &[Expr], var: &str, op: BinOp) -> Option<FExpr> {
    let mut iter = parts.iter();
    let mut acc = bridge(iter.next()?, var)?;
    for p in iter {
        acc = FExpr::Binary(op, Box::new(acc), Box::new(bridge(p, var)?));
    }
    Some(acc)
}

/// Static type class of a path's tail, walked through the schema. Any
/// uncertainty (unknown class, reference-valued tail, collection) reports
/// `Unknown`, which never rejects a comparison at compile time.
fn static_kind_for(catalog: &Catalog, class: &str, segs: &[String]) -> StaticKind {
    let mut cur = class.to_string();
    for (i, seg) in segs.iter().enumerate() {
        let Ok(attrs) = catalog.effective_attributes(&cur) else {
            return StaticKind::Unknown;
        };
        let Some(attr) = attrs.iter().find(|a| a.name == *seg) else {
            return StaticKind::Unknown;
        };
        if i + 1 == segs.len() {
            return match &attr.ty {
                TypeDescriptor::Basic(b) => match b {
                    BasicType::Integer | BasicType::LongInteger | BasicType::Float => {
                        StaticKind::Num
                    }
                    BasicType::String | BasicType::Char => StaticKind::Str,
                    BasicType::Boolean => StaticKind::Bool,
                },
                _ => StaticKind::Unknown,
            };
        }
        match attr.ty.referenced_class() {
            Some(target) => cur = target.to_string(),
            None => return StaticKind::Unknown,
        }
    }
    StaticKind::Unknown
}

/// Slot offset of a root attribute in the class's effective attribute
/// order — the order `NewObject` stores tuple fields in. The program
/// verifies the name at the slot, so a mismatch only costs a scan.
fn root_slot_for(catalog: &Catalog, class: &str, attr: &str) -> Option<u16> {
    let attrs = catalog.effective_attributes(class).ok()?;
    let idx = attrs.iter().position(|a| a.name == attr)?;
    u16::try_from(idx).ok()
}
