//! Ablation 2 — Algorithm 8.2's greedy pairwise ordering against the naive
//! left-to-right execution of a path's implicit joins, at the model level
//! (predicted plan cost over the paper's statistics) and measured end to
//! end on a generated database.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mood_bench::{build_vehicle_db, VehicleDbSpec};
use mood_core::cost::{forward_traversal_cost, hash_partition_cost, ClassInfo, JoinMethod};
use mood_core::optimizer::{optimize, OptimizerConfig, PredSpec, QuerySpec};
use mood_core::{DatabaseStats, PhysicalParams};

fn bench(c: &mut Criterion) {
    // Model-level comparison at the paper's operating point (Example 8.2):
    // greedy (merge (d,e) first, both hash) vs naive left-to-right forward
    // traversal of the whole extent.
    let p = PhysicalParams::paper_calibrated();
    let vehicle = ClassInfo {
        cardinality: 20_000.0,
        nbpages: 2_000.0,
    };
    let train = ClassInfo {
        cardinality: 10_000.0,
        nbpages: 750.0,
    };
    let engine = ClassInfo {
        cardinality: 10_000.0,
        nbpages: 5_000.0,
    };
    // Naive: forward-traverse v→d (all 20000), then d→e.
    let naive = forward_traversal_cost(&p, 20_000.0, &vehicle, 1.0)
        + forward_traversal_cost(&p, 10_000.0, &train, 1.0);
    // Greedy (the generated plan): hash (d ⋈ σe), then hash (v ⋈ T1) with
    // T1 in memory (D-fetch term drops). k_c/|C| = 1: the whole extent.
    let k_c_over_extent = 1.0;
    let greedy = hash_partition_cost(&p, 10_000.0, &train, &engine, 1.0, 10_000.0)
        + 3.0 * (k_c_over_extent) * mood_core::cost::seqcost(&p, vehicle.nbpages);
    println!("\n# Ablation: Example 8.2 predicted plan cost (model seconds)");
    println!("  naive left-to-right forward : {naive:10.2}");
    println!("  Algorithm 8.2 greedy (plan) : {greedy:10.2}");
    println!("  speedup                     : {:10.2}x", naive / greedy);

    // Planning-time criterion bench: optimizing the Example 8.2 query spec.
    let stats = DatabaseStats::paper_example();
    let cfg = OptimizerConfig::paper();
    let mut spec = QuerySpec::new("v", "Vehicle");
    spec.terms = vec![vec![PredSpec::Path {
        path: vec!["drivetrain".into(), "engine".into(), "cylinders".into()],
        theta: mood_core::cost::Theta::Eq,
        constant: mood_core::optimizer::Const::Num(2.0),
        terminal_var: None,
    }]];
    let mut group = c.benchmark_group("join_ordering");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("optimize_example_8_2", |b| {
        b.iter(|| {
            let out = optimize(&spec, &stats, &cfg);
            assert_eq!(
                out.terms[0].plan.root.join_methods(),
                vec![JoinMethod::HashPartition, JoinMethod::HashPartition]
            );
            out.estimated_cost
        })
    });

    // Measured end-to-end: the same query shape on a generated database.
    let db = build_vehicle_db(&VehicleDbSpec::default());
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("execute_example_8_2_shape", |b| {
        b.iter(|| {
            db.query("SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2")
                .expect("query runs")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
