//! Database statistics — the paper's Table 8 (class/attribute/reference
//! parameters) and Table 9 (B+-tree parameters).
//!
//! Statistics come from two sources: `collect` scans in the [`crate::Catalog`]
//! (measuring a real database), or direct construction (injecting the
//! paper's Tables 13–15 so the optimizer examples reproduce exactly).

use std::collections::HashMap;

use mood_storage::BTreeStats;

/// Per-class statistics: `|C|`, `nbpages(C)`, `size(C)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Total number of instances of C — `|C|`.
    pub cardinality: u64,
    /// Total number of pages in which class C is stored — `nbpages(C)`.
    pub nbpages: u64,
    /// Size of an instance of class C in bytes — `size(C)`.
    pub size: u64,
}

/// Per-atomic-attribute statistics: `notnull`, `dist`, `max`, `min`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Proportion of instances with the attribute not null — `notnull(A,C)`.
    pub notnull: f64,
    /// Number of distinct values — `dist(A,C)`.
    pub dist: u64,
    /// Maximum value (numeric attributes; `None` for strings) — `max(A,C)`.
    pub max: Option<f64>,
    /// Minimum value — `min(A,C)`.
    pub min: Option<f64>,
}

/// Per-reference-attribute statistics: `fan`, `totref` (and the derived
/// `totlinks`, `hitprb`).
#[derive(Debug, Clone, PartialEq)]
pub struct RefStats {
    /// The referenced class D.
    pub target: String,
    /// Average number of D instances referenced per C instance —
    /// `fan(A,C,D)`.
    pub fan: f64,
    /// Number of D objects referenced by at least one C object —
    /// `totref(A,C,D)`.
    pub totref: u64,
}

/// The statistics catalog.
#[derive(Debug, Clone, Default)]
pub struct DatabaseStats {
    classes: HashMap<String, ClassStats>,
    attrs: HashMap<(String, String), AttrStats>,
    refs: HashMap<(String, String), RefStats>,
    indexes: HashMap<(String, String), BTreeStats>,
}

impl DatabaseStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_class(&mut self, class: &str, stats: ClassStats) {
        self.classes.insert(class.to_string(), stats);
    }

    pub fn set_attr(&mut self, class: &str, attr: &str, stats: AttrStats) {
        self.attrs
            .insert((class.to_string(), attr.to_string()), stats);
    }

    pub fn set_ref(&mut self, class: &str, attr: &str, stats: RefStats) {
        self.refs
            .insert((class.to_string(), attr.to_string()), stats);
    }

    pub fn set_index(&mut self, class: &str, attr: &str, stats: BTreeStats) {
        self.indexes
            .insert((class.to_string(), attr.to_string()), stats);
    }

    pub fn class(&self, class: &str) -> Option<&ClassStats> {
        self.classes.get(class)
    }

    pub fn attr(&self, class: &str, attr: &str) -> Option<&AttrStats> {
        self.attrs.get(&(class.to_string(), attr.to_string()))
    }

    pub fn reference(&self, class: &str, attr: &str) -> Option<&RefStats> {
        self.refs.get(&(class.to_string(), attr.to_string()))
    }

    pub fn index(&self, class: &str, attr: &str) -> Option<&BTreeStats> {
        self.indexes.get(&(class.to_string(), attr.to_string()))
    }

    /// `totlinks(A,C,D) = fan(A,C,D) * |C|`.
    pub fn totlinks(&self, class: &str, attr: &str) -> Option<f64> {
        let r = self.reference(class, attr)?;
        let c = self.class(class)?;
        Some(r.fan * c.cardinality as f64)
    }

    /// `hitprb(A,C,D) = totref(A,C,D) / |D|`.
    pub fn hitprb(&self, class: &str, attr: &str) -> Option<f64> {
        let r = self.reference(class, attr)?;
        let d = self.class(&r.target)?;
        Some(r.totref as f64 / d.cardinality as f64)
    }

    /// The statistics of the paper's example database — Tables 13, 14 and
    /// 15 verbatim. Every Section 8 example runs against these.
    pub fn paper_example() -> DatabaseStats {
        let mut s = DatabaseStats::new();
        // Table 13.
        s.set_class(
            "Vehicle",
            ClassStats {
                cardinality: 20_000,
                nbpages: 2_000,
                size: 400,
            },
        );
        s.set_class(
            "VehicleDriveTrain",
            ClassStats {
                cardinality: 10_000,
                nbpages: 750,
                size: 300,
            },
        );
        s.set_class(
            "VehicleEngine",
            ClassStats {
                cardinality: 10_000,
                nbpages: 5_000,
                size: 2_000,
            },
        );
        s.set_class(
            "Company",
            ClassStats {
                cardinality: 200_000,
                nbpages: 2_500,
                size: 500,
            },
        );
        // Table 14.
        s.set_attr(
            "VehicleEngine",
            "cylinders",
            AttrStats {
                notnull: 1.0,
                dist: 16,
                max: Some(32.0),
                min: Some(2.0),
            },
        );
        s.set_attr(
            "Company",
            "name",
            AttrStats {
                notnull: 1.0,
                dist: 200_000,
                max: None,
                min: None,
            },
        );
        // Table 15. (`totlinks` and `hitprb` are derived; the derived values
        // match the table's printed columns — asserted in tests.)
        s.set_ref(
            "Vehicle",
            "drivetrain",
            RefStats {
                target: "VehicleDriveTrain".into(),
                fan: 1.0,
                totref: 10_000,
            },
        );
        s.set_ref(
            "Vehicle",
            "manufacturer",
            RefStats {
                target: "Company".into(),
                fan: 1.0,
                totref: 20_000,
            },
        );
        s.set_ref(
            "VehicleDriveTrain",
            "engine",
            RefStats {
                target: "VehicleEngine".into(),
                fan: 1.0,
                totref: 10_000,
            },
        );
        // The example query's `v.company` path is the `manufacturer`
        // attribute under its FROM-clause alias; register the alias too so
        // the Example 8.1 text can be reproduced verbatim.
        s.set_ref(
            "Vehicle",
            "company",
            RefStats {
                target: "Company".into(),
                fan: 1.0,
                totref: 20_000,
            },
        );
        s
    }

    pub fn classes(&self) -> impl Iterator<Item = (&String, &ClassStats)> {
        self.classes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_13_values() {
        let s = DatabaseStats::paper_example();
        let v = s.class("Vehicle").unwrap();
        assert_eq!((v.cardinality, v.nbpages, v.size), (20_000, 2_000, 400));
        let c = s.class("Company").unwrap();
        assert_eq!((c.cardinality, c.nbpages, c.size), (200_000, 2_500, 500));
    }

    #[test]
    fn paper_table_15_derived_columns() {
        let s = DatabaseStats::paper_example();
        // Row: Vehicle.drivetrain — fan 1, totref 10000, totlinks 20000, hitprb 1.
        assert_eq!(s.totlinks("Vehicle", "drivetrain"), Some(20_000.0));
        assert_eq!(s.hitprb("Vehicle", "drivetrain"), Some(1.0));
        // Row: Vehicle.manufacturer — totlinks 20000, hitprb 0.1.
        assert_eq!(s.totlinks("Vehicle", "manufacturer"), Some(20_000.0));
        assert_eq!(s.hitprb("Vehicle", "manufacturer"), Some(0.1));
        // Row: VehicleDriveTrain.engine — totlinks 10000, hitprb 1.
        assert_eq!(s.totlinks("VehicleDriveTrain", "engine"), Some(10_000.0));
        assert_eq!(s.hitprb("VehicleDriveTrain", "engine"), Some(1.0));
    }

    #[test]
    fn paper_table_14_values() {
        let s = DatabaseStats::paper_example();
        let cyl = s.attr("VehicleEngine", "cylinders").unwrap();
        assert_eq!((cyl.dist, cyl.max, cyl.min), (16, Some(32.0), Some(2.0)));
        assert_eq!(s.attr("Company", "name").unwrap().dist, 200_000);
    }

    #[test]
    fn missing_stats_are_none() {
        let s = DatabaseStats::paper_example();
        assert!(s.class("Nothing").is_none());
        assert!(s.totlinks("Vehicle", "nothing").is_none());
        assert!(s.hitprb("Nothing", "x").is_none());
    }
}
