//! Buffer pool with clock (second-chance) replacement.
//!
//! Access is closure-based: `with_page` / `with_page_mut` pin the frame for
//! the duration of the callback only, which keeps the API free of guard
//! lifetimes. Callbacks must not re-enter the pool (the higher layers
//! materialize node/record data into owned values before touching another
//! page, so nesting never occurs in practice; a debug re-entrancy check
//! enforces it).
//!
//! Every *logical* access is classified by the caller as sequential, random
//! or index ([`AccessKind`]); the pool records a physical read only on a
//! miss, so the [`DiskMetrics`] counters reflect real I/O with caching — the
//! paper's worst-case cost formulas are recovered by sizing the pool small.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::disk::Disk;
use crate::error::{Result, StorageError};
use crate::metrics::{AccessKind, DiskMetrics};
use crate::oid::{FileId, PageId};
use crate::page::Page;

struct Frame {
    key: Option<(FileId, PageId)>,
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// True while a callback holds the page outside the pool lock; other
    /// threads touching the same page wait on the pool condvar.
    checked_out: bool,
}

/// A page's state captured at its first write inside a transaction (or
/// statement): the bytes to restore on rollback and whether the frame was
/// already dirty, so rollback can put the dirty flag back too.
struct UndoEntry {
    before: Page,
    was_dirty: bool,
}

struct StmtEntry {
    before: Page,
    was_dirty: bool,
    /// First dirtied by *this* statement (not an earlier one in the same
    /// transaction) — statement rollback must also forget the
    /// transaction-level undo entry, returning the page to pre-txn state.
    fresh_in_txn: bool,
}

/// Undo bookkeeping for the (single) open transaction. The pool is the one
/// place that sees every page write, so it captures before-images here:
/// the redo-only WAL can replay committed work after a crash but cannot
/// undo a live transaction — that takes these images.
struct TxnTracker {
    undo: HashMap<(FileId, PageId), UndoEntry>,
    /// Statement-level savepoint: captured per page while a statement runs
    /// inside an explicit transaction, so a failing statement rolls back
    /// alone without taking the whole transaction with it.
    stmt: Option<HashMap<(FileId, PageId), StmtEntry>>,
}

struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageId), usize>,
    hand: usize,
    txn: Option<TxnTracker>,
}

/// A shared buffer pool over a [`Disk`].
pub struct BufferPool {
    disk: Arc<dyn Disk>,
    state: Mutex<PoolState>,
    returned: Condvar,
    /// Signalled when the open transaction ends (single-writer gate).
    txn_free: Condvar,
    metrics: DiskMetrics,
    capacity: usize,
    /// No-steal discipline: pages dirtied by the open transaction are
    /// pinned in the pool (never evicted or flushed) until it commits.
    /// Durable (file-backed) managers set this; in-memory ones don't need
    /// it — their rollback path rewrites before-images through the disk.
    no_steal: bool,
}

thread_local! {
    /// Per-thread re-entrancy guard: a callback on this thread must not call
    /// back into any pool (higher layers materialize data before the next
    /// page access).
    static IN_CALLBACK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl BufferPool {
    /// Pool with `capacity` frames over `disk`, reporting into `metrics`.
    pub fn new(disk: Arc<dyn Disk>, capacity: usize, metrics: DiskMetrics) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                key: None,
                page: Page::new(),
                dirty: false,
                pins: 0,
                referenced: false,
                checked_out: false,
            })
            .collect();
        BufferPool {
            disk,
            state: Mutex::new(PoolState {
                frames,
                map: HashMap::new(),
                hand: 0,
                txn: None,
            }),
            returned: Condvar::new(),
            txn_free: Condvar::new(),
            metrics,
            capacity,
            no_steal: false,
        }
    }

    /// Like [`BufferPool::new`], but with the no-steal discipline: pages
    /// dirtied by the open transaction stay resident until it ends, which
    /// is what lets a redo-only log skip undo records. Durable managers
    /// use this; see the `no_steal` field.
    pub fn new_no_steal(disk: Arc<dyn Disk>, capacity: usize, metrics: DiskMetrics) -> Self {
        let mut pool = Self::new(disk, capacity, metrics);
        pool.no_steal = true;
        pool
    }

    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Read access to a page.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R> {
        self.access(file, page, kind, false, |p| f(p))
    }

    /// Write access to a page; the frame is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        self.access(file, page, kind, true, f)
    }

    fn access<R>(
        &self,
        file: FileId,
        page: PageId,
        kind: AccessKind,
        write: bool,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        assert!(
            !IN_CALLBACK.with(|c| c.get()),
            "buffer pool callbacks must not re-enter the pool"
        );
        let mut st = self.state.lock();
        let idx = loop {
            match st.map.get(&(file, page)).copied() {
                Some(i) if st.frames[i].checked_out => {
                    // Another thread holds this page outside the lock; wait
                    // for it to come back, then retry the lookup (the frame
                    // cannot be evicted while pinned).
                    self.returned.wait(&mut st);
                }
                Some(i) => {
                    self.metrics.record_buffer_hit();
                    break i;
                }
                None => {
                    let i = match self.evict_one(&mut st) {
                        Ok(i) => i,
                        Err(StorageError::PoolExhausted) => {
                            if st.frames.iter().any(|fr| fr.checked_out) {
                                // Every frame is pinned by an in-flight
                                // callback. Wait for one to be returned,
                                // then retry the lookup (another thread may
                                // even load this page for us in the
                                // meantime, turning this into a hit).
                                self.returned.wait(&mut st);
                                continue;
                            }
                            // Nothing will be returned: the pool is full of
                            // pages pinned by the open transaction (no-steal).
                            // Surface the error so the statement aborts and
                            // rollback frees them.
                            return Err(StorageError::PoolExhausted);
                        }
                        Err(e) => return Err(e),
                    };
                    self.metrics.record_buffer_miss();
                    self.metrics.record_read(kind);
                    self.disk.read_page(file, page, &mut st.frames[i].page)?;
                    st.frames[i].key = Some((file, page));
                    st.frames[i].dirty = false;
                    st.map.insert((file, page), i);
                    break i;
                }
            }
        };
        st.frames[idx].referenced = true;
        st.frames[idx].pins += 1;
        if write {
            // First write inside a transaction (or statement): capture the
            // page's before-image so a live rollback can restore it — the
            // redo-only WAL cannot.
            let PoolState { frames, txn, .. } = &mut *st;
            if let Some(tr) = txn.as_mut() {
                let key = (file, page);
                let fresh = !tr.undo.contains_key(&key);
                if fresh {
                    tr.undo.insert(
                        key,
                        UndoEntry {
                            before: frames[idx].page.clone(),
                            was_dirty: frames[idx].dirty,
                        },
                    );
                }
                if let Some(stmt) = tr.stmt.as_mut() {
                    stmt.entry(key).or_insert_with(|| StmtEntry {
                        before: frames[idx].page.clone(),
                        was_dirty: frames[idx].dirty,
                        fresh_in_txn: fresh,
                    });
                }
            }
            st.frames[idx].dirty = true;
        }
        st.frames[idx].checked_out = true;
        // Temporarily move the page out so the callback runs without the
        // pool lock; `checked_out` makes same-page accessors wait above.
        let mut owned = std::mem::take(&mut st.frames[idx].page);
        drop(st);
        IN_CALLBACK.with(|c| c.set(true));
        let result = f(&mut owned);
        IN_CALLBACK.with(|c| c.set(false));
        let mut st = self.state.lock();
        st.frames[idx].page = owned;
        st.frames[idx].pins -= 1;
        st.frames[idx].checked_out = false;
        drop(st);
        self.returned.notify_all();
        Ok(result)
    }

    /// Allocate a fresh page in `file`, run `init` on it, and return its id.
    pub fn new_page<R>(
        &self,
        file: FileId,
        init: impl FnOnce(&mut Page) -> R,
    ) -> Result<(PageId, R)> {
        let pid = self.disk.allocate_page(file)?;
        let r = self.with_page_mut(file, pid, AccessKind::Random, init)?;
        Ok((pid, r))
    }

    fn evict_one(&self, st: &mut PoolState) -> Result<usize> {
        // Clock sweep: at most two full passes (first clears reference bits).
        for _ in 0..(2 * st.frames.len() + 1) {
            let i = st.hand;
            st.hand = (st.hand + 1) % st.frames.len();
            // No-steal: pages dirtied by the open transaction are pinned —
            // flushing them would put uncommitted bytes on disk that a
            // redo-only log could never undo after a crash.
            let txn_pinned = self.no_steal
                && match (&st.txn, st.frames[i].key) {
                    (Some(tr), Some(key)) => tr.undo.contains_key(&key),
                    _ => false,
                };
            let frame = &mut st.frames[i];
            if frame.pins > 0 || txn_pinned {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if let Some(key) = frame.key.take() {
                if frame.dirty {
                    self.metrics.record_write();
                    self.disk.write_page(key.0, key.1, &frame.page)?;
                    frame.dirty = false;
                }
                st.map.remove(&key);
                self.metrics.record_buffer_eviction();
            }
            return Ok(i);
        }
        Err(StorageError::PoolExhausted)
    }

    /// Write all dirty frames back to disk (without dropping them). Under
    /// no-steal, pages dirtied by the open transaction are skipped — they
    /// reach disk only after their commit record is durable.
    pub fn flush_all(&self) -> Result<()> {
        let mut st = self.state.lock();
        let PoolState { frames, txn, .. } = &mut *st;
        for frame in frames.iter_mut() {
            if let (Some(key), true) = (frame.key, frame.dirty) {
                if self.no_steal {
                    if let Some(tr) = txn.as_ref() {
                        if tr.undo.contains_key(&key) {
                            continue;
                        }
                    }
                }
                self.metrics.record_write();
                self.disk.write_page(key.0, key.1, &frame.page)?;
                frame.dirty = false;
            }
        }
        drop(st);
        self.disk.sync()
    }

    /// Evict all frames belonging to `file`, writing dirty ones back first.
    /// Used when a file handle is retired; the data stays on disk.
    pub fn discard_file(&self, file: FileId) {
        let mut st = self.state.lock();
        let keys: Vec<_> = st.map.keys().filter(|(f, _)| *f == file).copied().collect();
        for key in keys {
            if let Some(i) = st.map.remove(&key) {
                if st.frames[i].dirty {
                    self.metrics.record_write();
                    // Best-effort write-back; a failing disk loses the frame.
                    let _ = self.disk.write_page(key.0, key.1, &st.frames[i].page);
                }
                st.frames[i].key = None;
                st.frames[i].dirty = false;
                st.frames[i].referenced = false;
            }
        }
        // File drops are not transactional (DDL autocommits): stop tracking
        // its pages so commit/rollback don't resurrect a dropped file.
        if let Some(tr) = st.txn.as_mut() {
            tr.undo.retain(|(f, _), _| *f != file);
            if let Some(stmt) = tr.stmt.as_mut() {
                stmt.retain(|(f, _), _| *f != file);
            }
        }
    }

    /// Number of frames currently caching pages (for tests).
    pub fn resident(&self) -> usize {
        self.state.lock().map.len()
    }

    // ------------------------------------------------------------------
    // Transaction bookkeeping. The pool tracks a single open transaction
    // (MOOD's sessions serialize writers); `txn_begin` blocks until the
    // current one ends, giving single-writer semantics across sessions.
    // ------------------------------------------------------------------

    /// Open the transaction slot, blocking while another transaction holds
    /// it. From here until [`txn_end`](Self::txn_end) /
    /// [`txn_rollback`](Self::txn_rollback), every page write captures a
    /// before-image, and under no-steal the dirtied pages are pinned.
    pub fn txn_begin(&self) {
        let mut st = self.state.lock();
        while st.txn.is_some() {
            self.txn_free.wait(&mut st);
        }
        st.txn = Some(TxnTracker {
            undo: HashMap::new(),
            stmt: None,
        });
    }

    /// Is a transaction currently open?
    pub fn txn_active(&self) -> bool {
        self.state.lock().txn.is_some()
    }

    /// Current images of every page the open transaction dirtied, in
    /// deterministic (file, page) order — what the committer logs as
    /// after-images. Pages of files dropped mid-transaction are skipped.
    pub fn txn_dirty_pages(&self) -> Result<Vec<(FileId, PageId, Page)>> {
        let st = self.state.lock();
        let tr = match st.txn.as_ref() {
            Some(t) => t,
            None => return Ok(Vec::new()),
        };
        let mut keys: Vec<_> = tr.undo.keys().copied().collect();
        keys.sort();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(&i) = st.map.get(&key) {
                out.push((key.0, key.1, st.frames[i].page.clone()));
            } else {
                // Evicted (steal mode only). The disk holds the latest
                // image; read it back for the log.
                let mut p = Page::new();
                match self.disk.read_page(key.0, key.1, &mut p) {
                    Ok(()) => out.push((key.0, key.1, p)),
                    Err(StorageError::UnknownFile(_))
                    | Err(StorageError::PageOutOfRange { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(out)
    }

    /// Close the transaction slot after a successful commit: drop the undo
    /// images and unpin the pages (they flush through normal eviction or
    /// checkpoints from here on).
    pub fn txn_end(&self) {
        self.state.lock().txn = None;
        self.txn_free.notify_all();
        self.returned.notify_all();
    }

    /// Roll the open transaction back: restore every captured before-image
    /// and close the slot. Returns whether the transaction had dirtied any
    /// pages. Restoration keeps going past per-page errors (dropped files)
    /// and reports the first real one.
    pub fn txn_rollback(&self) -> Result<bool> {
        let tracker = self.state.lock().txn.take();
        let tr = match tracker {
            Some(t) => t,
            None => return Ok(false),
        };
        let had_writes = !tr.undo.is_empty();
        let mut entries: Vec<_> = tr.undo.into_iter().collect();
        entries.sort_by_key(|(k, _)| *k);
        let mut first_err = None;
        for (key, e) in entries {
            if let Err(err) = self.restore_page(key, e.before, e.was_dirty) {
                first_err.get_or_insert(err);
            }
        }
        self.txn_free.notify_all();
        self.returned.notify_all();
        match first_err {
            Some(e) => Err(e),
            None => Ok(had_writes),
        }
    }

    /// Open a statement-level savepoint inside the current transaction.
    /// No-op without an open transaction (autocommit wraps the statement
    /// in its own transaction instead).
    pub fn stmt_begin(&self) {
        if let Some(tr) = self.state.lock().txn.as_mut() {
            tr.stmt = Some(HashMap::new());
        }
    }

    /// Release the statement savepoint (the statement succeeded).
    pub fn stmt_end(&self) {
        if let Some(tr) = self.state.lock().txn.as_mut() {
            tr.stmt = None;
        }
    }

    /// Roll back just the current statement's writes, leaving earlier
    /// statements of the transaction intact.
    pub fn stmt_rollback(&self) -> Result<()> {
        let entries: Vec<((FileId, PageId), StmtEntry)> = {
            let mut st = self.state.lock();
            let tr = match st.txn.as_mut() {
                Some(t) => t,
                None => return Ok(()),
            };
            let stmt = match tr.stmt.take() {
                Some(m) => m,
                None => return Ok(()),
            };
            // Pages first touched by this statement return to their
            // pre-transaction state: forget their txn-level undo too.
            for (key, e) in &stmt {
                if e.fresh_in_txn {
                    tr.undo.remove(key);
                }
            }
            let mut v: Vec<_> = stmt.into_iter().collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        let mut first_err = None;
        for (key, e) in entries {
            if let Err(err) = self.restore_page(key, e.before, e.was_dirty) {
                first_err.get_or_insert(err);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Put a before-image back: into the frame if the page is resident
    /// (waiting out any in-flight callback on it), else straight to disk
    /// (steal mode can have flushed-and-evicted the uncommitted version).
    /// Vanished files/pages (dropped mid-transaction) are ignored.
    fn restore_page(&self, key: (FileId, PageId), before: Page, was_dirty: bool) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            match st.map.get(&key).copied() {
                Some(i) if st.frames[i].checked_out => {
                    self.returned.wait(&mut st);
                }
                Some(i) => {
                    st.frames[i].page = before;
                    // Under no-steal the disk still holds the pre-txn bytes,
                    // so a clean capture restores clean. In steal mode the
                    // uncommitted version may have been flushed — force a
                    // write-back.
                    st.frames[i].dirty = was_dirty || !self.no_steal;
                    return Ok(());
                }
                None => {
                    self.metrics.record_write();
                    return match self.disk.write_page(key.0, key.1, &before) {
                        Ok(()) => Ok(()),
                        Err(StorageError::UnknownFile(_))
                        | Err(StorageError::PageOutOfRange { .. }) => Ok(()),
                        Err(e) => Err(e),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::page::PAGE_SIZE;

    fn pool(cap: usize) -> (BufferPool, FileId) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), cap, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        (pool, f)
    }

    #[test]
    fn read_your_writes_through_pool() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 42).unwrap();
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, f) = pool(2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let (pid, _) = pool.new_page(f, |p| p.data[0] = i).unwrap();
            pids.push(pid);
        }
        // All five pages exceed the 2-frame pool; earlier ones were evicted
        // and must come back from disk with their data intact.
        for (i, pid) in pids.iter().enumerate() {
            let v = pool
                .with_page(f, *pid, AccessKind::Random, |p| p.data[0])
                .unwrap();
            assert_eq!(v as usize, i);
        }
        assert!(pool.resident() <= 2);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        let before = pool.metrics().snapshot();
        for _ in 0..10 {
            pool.with_page(f, pid, AccessKind::Sequential, |_| {})
                .unwrap();
        }
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!(d.buffer_hits, 10);
        assert_eq!(d.buffer_misses, 0);
        assert_eq!(d.seq_pages, 0, "cached accesses cost no I/O");
    }

    #[test]
    fn misses_record_reads_by_kind() {
        let (pool, f) = pool(1);
        let (p0, _) = pool.new_page(f, |_| {}).unwrap();
        let (p1, _) = pool.new_page(f, |_| {}).unwrap();
        let before = pool.metrics().snapshot();
        // Ping-pong between two pages with a 1-frame pool: every access misses.
        pool.with_page(f, p0, AccessKind::Random, |_| {}).unwrap();
        pool.with_page(f, p1, AccessKind::Index, |_| {}).unwrap();
        pool.with_page(f, p0, AccessKind::Sequential, |_| {})
            .unwrap();
        let d = pool.metrics().snapshot().delta(&before);
        assert_eq!((d.rnd_pages, d.idx_pages, d.seq_pages), (1, 1, 1));
    }

    #[test]
    fn flush_all_persists_to_disk() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 4, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (pid, _) = pool.new_page(f, |p| p.data[PAGE_SIZE - 1] = 9).unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[PAGE_SIZE - 1], 9);
    }

    #[test]
    fn discard_file_drops_frames() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        assert_eq!(pool.resident(), 1);
        pool.discard_file(f);
        assert_eq!(pool.resident(), 0);
        // The page is still on disk (discard is not delete).
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn txn_rollback_restores_before_images() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 99)
            .unwrap();
        assert!(pool.txn_rollback().unwrap());
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1, "rollback must restore the before-image");
    }

    #[test]
    fn txn_rollback_reaches_evicted_pages_in_steal_mode() {
        // 1-frame steal-mode pool: the txn's first write is flushed and
        // evicted by the second; rollback must still undo it via the disk.
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 1, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (p0, _) = pool.new_page(f, |p| p.data[0] = 10).unwrap();
        let (p1, _) = pool.new_page(f, |p| p.data[0] = 20).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, p0, AccessKind::Random, |p| p.data[0] = 11)
            .unwrap();
        pool.with_page_mut(f, p1, AccessKind::Random, |p| p.data[0] = 21)
            .unwrap(); // evicts p0 with its uncommitted byte
        assert!(pool.txn_rollback().unwrap());
        let v0 = pool
            .with_page(f, p0, AccessKind::Random, |p| p.data[0])
            .unwrap();
        let v1 = pool
            .with_page(f, p1, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!((v0, v1), (10, 20));
    }

    #[test]
    fn stmt_rollback_undoes_only_the_statement() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 1).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 2)
            .unwrap(); // statement 1 (kept)
        pool.stmt_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 3)
            .unwrap(); // statement 2 (rolled back)
        pool.stmt_rollback().unwrap();
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 2, "stmt rollback keeps earlier statements' writes");
        // The whole txn can still roll back to the pre-txn image.
        assert!(pool.txn_rollback().unwrap());
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn stmt_rollback_forgets_fresh_pages_at_txn_level() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 7).unwrap();
        pool.txn_begin();
        pool.stmt_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 8)
            .unwrap();
        pool.stmt_rollback().unwrap();
        // The statement was the only writer: the txn has nothing to undo.
        assert!(!pool.txn_rollback().unwrap());
        let v = pool
            .with_page(f, pid, AccessKind::Random, |p| p.data[0])
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn no_steal_pins_uncommitted_dirty_pages() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new_no_steal(disk.clone(), 4, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (pid, _) = pool.new_page(f, |p| p.data[0] = 5).unwrap();
        pool.flush_all().unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, pid, AccessKind::Random, |p| p.data[0] = 6)
            .unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[0], 5, "uncommitted bytes must not reach disk");
        pool.txn_end();
        pool.flush_all().unwrap();
        disk.read_page(f, pid, &mut raw).unwrap();
        assert_eq!(raw.data[0], 6, "after commit the page flushes normally");
    }

    #[test]
    fn no_steal_exhaustion_errors_instead_of_hanging() {
        // A 1-frame no-steal pool with a txn-pinned dirty page cannot load
        // a second page; the access must error, not deadlock.
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new_no_steal(disk.clone(), 1, DiskMetrics::new());
        let f = disk.create_file().unwrap();
        let (p0, _) = pool.new_page(f, |_| {}).unwrap();
        let p1 = disk.allocate_page(f).unwrap();
        pool.txn_begin();
        pool.with_page_mut(f, p0, AccessKind::Random, |p| p.data[0] = 1)
            .unwrap();
        let err = pool.with_page(f, p1, AccessKind::Random, |_| {});
        assert!(matches!(err, Err(StorageError::PoolExhausted)));
        // Rollback frees the pinned frame; the pool works again.
        pool.txn_rollback().unwrap();
        pool.with_page(f, p1, AccessKind::Random, |_| {}).unwrap();
    }

    #[test]
    #[should_panic(expected = "re-enter")]
    fn reentrancy_is_detected() {
        let (pool, f) = pool(4);
        let (pid, _) = pool.new_page(f, |_| {}).unwrap();
        let pool_ref = &pool;
        let _ = pool.with_page(f, pid, AccessKind::Random, |_| {
            let _ = pool_ref.with_page(f, pid, AccessKind::Random, |_| {});
        });
    }
}
