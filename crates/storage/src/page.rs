//! Fixed-size pages and the slotted-page record layout.
//!
//! Layout of a slotted page (all integers little-endian):
//!
//! ```text
//! +---------------------------+ 0
//! | slot_count: u16           |
//! | free_start: u16           |  end of the slot directory growth area
//! | free_end:   u16           |  start of the record heap (grows downward)
//! | flags:      u16           |
//! +---------------------------+ 8
//! | slot[0] { off:u16 len:u16 unique:u32 }   8 bytes each
//! | slot[1] ...               |
//! |        ... free space ... |
//! |          records (packed at the high end, grow downward)
//! +---------------------------+ PAGE_SIZE
//! ```
//!
//! * `len == LEN_FREE` marks a free (tombstoned) slot whose number can be
//!   reused; its `unique` stamp is bumped on reuse so stale OIDs fail.
//! * `len == LEN_FORWARD` marks a forwarding stub: the record bytes are a
//!   serialized [`crate::oid::Oid`] pointing at the record's new home.
//!
//! The last [`PAGE_TRAILER`] bytes of *every* page (slotted or raw) are
//! reserved for a checksum trailer `[magic: u32][crc: u32]` owned by the
//! disk boundary: the buffer pool stamps it on write-back and verifies it
//! on read. Record layouts never touch bytes past [`PAGE_USABLE`]. A page
//! without the magic (e.g. a freshly allocated all-zero page) is
//! *unstamped* and passes verification.

use crate::error::{Result, StorageError};
use crate::oid::SlotId;

/// Page size in bytes — the paper's Table 10 parameter `B`.
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved at the page tail for the checksum trailer
/// (`[magic: u32 LE][crc: u32 LE]`).
pub const PAGE_TRAILER: usize = 8;
/// Bytes of a page usable by record layouts; everything past this offset
/// belongs to the checksum trailer.
pub const PAGE_USABLE: usize = PAGE_SIZE - PAGE_TRAILER;
/// Trailer magic; its absence marks an unstamped page.
const TRAILER_MAGIC: u32 = 0x4D4F_4F44; // "MOOD"

const HEADER: usize = 8;
const SLOT_BYTES: usize = 8;
const LEN_FREE: u16 = u16::MAX;
const LEN_FORWARD: u16 = u16::MAX - 1;
/// Largest record payload storable in one page.
pub const MAX_RECORD: usize = PAGE_USABLE - HEADER - SLOT_BYTES;

/// A raw page buffer.
#[derive(Clone)]
pub struct Page {
    pub data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    pub fn new() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn u32_at(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    fn set_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Stamp the checksum trailer over the usable bytes. Called by the
    /// buffer pool (and WAL recovery) immediately before every disk
    /// write; in-memory readers never consult the trailer.
    pub fn stamp_checksum(&mut self) {
        let crc = crate::wal::checksum(&self.data[..PAGE_USABLE]);
        self.set_u32(PAGE_USABLE, TRAILER_MAGIC);
        self.set_u32(PAGE_USABLE + 4, crc);
    }

    /// Verify the checksum trailer: `Ok(())` for an unstamped page or a
    /// matching crc, `Err((expected, actual))` on a mismatch, where
    /// `expected` is the crc the trailer promised.
    pub fn verify_checksum(&self) -> std::result::Result<(), (u32, u32)> {
        if self.u32_at(PAGE_USABLE) != TRAILER_MAGIC {
            return Ok(());
        }
        let expected = self.u32_at(PAGE_USABLE + 4);
        let actual = crate::wal::checksum(&self.data[..PAGE_USABLE]);
        if expected == actual {
            Ok(())
        } else {
            Err((expected, actual))
        }
    }
}

/// What a slot currently holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotContent {
    /// A live record (payload bytes).
    Record(Vec<u8>),
    /// The record moved; follow the forwarding bytes (a serialized OID).
    Forward(Vec<u8>),
    /// The slot is free.
    Free,
}

/// View of a page interpreted as a slotted record page.
///
/// All methods take `&mut Page`/`&Page`; the buffer pool hands those out.
pub struct SlottedPage;

impl SlottedPage {
    /// Initialize an empty slotted page in `page`.
    pub fn init(page: &mut Page) {
        page.data.fill(0);
        page.set_u16(0, 0); // slot_count
        page.set_u16(2, HEADER as u16); // free_start
        page.set_u16(4, PAGE_USABLE as u16); // free_end
        page.set_u16(6, 0); // flags
    }

    pub fn slot_count(page: &Page) -> u16 {
        page.u16_at(0)
    }

    fn free_start(page: &Page) -> usize {
        page.u16_at(2) as usize
    }

    fn free_end(page: &Page) -> usize {
        page.u16_at(4) as usize
    }

    /// Contiguous free bytes available right now (without compaction).
    pub fn contiguous_free(page: &Page) -> usize {
        Self::free_end(page) - Self::free_start(page)
    }

    /// Free bytes available after compaction (i.e. total reclaimable space).
    pub fn total_free(page: &Page) -> usize {
        let mut used = HEADER + Self::slot_count(page) as usize * SLOT_BYTES;
        for i in 0..Self::slot_count(page) {
            let (_, len, _) = Self::slot_entry(page, i);
            if len != LEN_FREE {
                used += Self::stored_len(len);
            }
        }
        PAGE_USABLE - used
    }

    /// Space physically occupied by a slot's record. Every record is
    /// allocated at least [`Oid::ENCODED_LEN`] bytes so that it can always
    /// be replaced in place by a forwarding stub (`make_forward` relies on
    /// this invariant).
    fn stored_len(len: u16) -> usize {
        if len == LEN_FORWARD {
            crate::oid::Oid::ENCODED_LEN
        } else {
            (len as usize).max(crate::oid::Oid::ENCODED_LEN)
        }
    }

    fn slot_entry(page: &Page, i: u16) -> (u16, u16, u32) {
        let base = HEADER + i as usize * SLOT_BYTES;
        (
            page.u16_at(base),
            page.u16_at(base + 2),
            page.u32_at(base + 4),
        )
    }

    fn set_slot_entry(page: &mut Page, i: u16, off: u16, len: u16, unique: u32) {
        let base = HEADER + i as usize * SLOT_BYTES;
        page.set_u16(base, off);
        page.set_u16(base + 2, len);
        page.set_u32(base + 4, unique);
    }

    /// Would a record of `len` bytes fit (possibly after compaction,
    /// possibly reusing a free slot)?
    pub fn fits(page: &Page, len: usize) -> bool {
        if len > MAX_RECORD {
            return false;
        }
        let alloc = len.max(crate::oid::Oid::ENCODED_LEN);
        let reuse = Self::find_free_slot(page).is_some();
        let need = alloc + if reuse { 0 } else { SLOT_BYTES };
        Self::total_free(page) >= need
    }

    fn find_free_slot(page: &Page) -> Option<u16> {
        (0..Self::slot_count(page)).find(|&i| Self::slot_entry(page, i).1 == LEN_FREE)
    }

    /// Insert a record, returning its (slot, unique-stamp).
    pub fn insert(page: &mut Page, record: &[u8]) -> Result<(SlotId, u32)> {
        Self::insert_tagged(page, record, false)
    }

    /// Insert a forwarding stub (serialized OID) into a specific page.
    pub fn insert_forward(page: &mut Page, oid_bytes: &[u8]) -> Result<(SlotId, u32)> {
        debug_assert_eq!(oid_bytes.len(), crate::oid::Oid::ENCODED_LEN);
        Self::insert_tagged(page, oid_bytes, true)
    }

    fn insert_tagged(page: &mut Page, record: &[u8], forward: bool) -> Result<(SlotId, u32)> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        let alloc = record.len().max(crate::oid::Oid::ENCODED_LEN);
        let reuse = Self::find_free_slot(page);
        let need = alloc + if reuse.is_some() { 0 } else { SLOT_BYTES };
        if Self::total_free(page) < need {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: Self::total_free(page),
            });
        }
        if Self::contiguous_free(page) < need {
            Self::compact(page);
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = Self::slot_count(page);
                page.set_u16(0, s + 1);
                page.set_u16(2, (Self::free_start(page) + SLOT_BYTES) as u16);
                // Newly appended slot directory entries start zeroed; mark free.
                Self::set_slot_entry(page, s, 0, LEN_FREE, 0);
                s
            }
        };
        let new_end = Self::free_end(page) - alloc;
        page.data[new_end..new_end + record.len()].copy_from_slice(record);
        page.set_u16(4, new_end as u16);
        let (_, _, old_unique) = Self::slot_entry(page, slot);
        let unique = old_unique.wrapping_add(1);
        let len_tag = if forward {
            LEN_FORWARD
        } else {
            record.len() as u16
        };
        // Forward stubs reuse the length tag; real length is the OID size.
        if forward {
            Self::set_slot_entry(page, slot, new_end as u16, LEN_FORWARD, unique);
        } else {
            Self::set_slot_entry(page, slot, new_end as u16, len_tag, unique);
        }
        Ok((SlotId(slot), unique))
    }

    /// Read the content of a slot, validating the unique stamp.
    pub fn get(page: &Page, slot: SlotId, unique: u32) -> Result<SlotContent> {
        let content = Self::get_any(page, slot)?;
        let (_, len, stamp) = Self::slot_entry(page, slot.0);
        if len != LEN_FREE && stamp != unique {
            return Err(StorageError::Corrupt(format!(
                "stale OID: slot {} stamp {} != {}",
                slot.0, unique, stamp
            )));
        }
        Ok(content)
    }

    /// Read a slot without checking the stamp (used by sequential scans).
    pub fn get_any(page: &Page, slot: SlotId) -> Result<SlotContent> {
        if slot.0 >= Self::slot_count(page) {
            return Err(StorageError::Corrupt(format!(
                "slot {} beyond directory",
                slot.0
            )));
        }
        let (off, len, _) = Self::slot_entry(page, slot.0);
        Ok(match len {
            LEN_FREE => SlotContent::Free,
            LEN_FORWARD => SlotContent::Forward(
                page.data[off as usize..off as usize + crate::oid::Oid::ENCODED_LEN].to_vec(),
            ),
            n => SlotContent::Record(page.data[off as usize..off as usize + n as usize].to_vec()),
        })
    }

    /// Stamp of a slot (for scans that need to reconstruct OIDs).
    pub fn stamp(page: &Page, slot: SlotId) -> u32 {
        Self::slot_entry(page, slot.0).2
    }

    /// Delete a slot's record, leaving the slot free for reuse.
    pub fn delete(page: &mut Page, slot: SlotId) -> Result<()> {
        if slot.0 >= Self::slot_count(page) {
            return Err(StorageError::Corrupt(format!(
                "delete of slot {} beyond directory",
                slot.0
            )));
        }
        let (off, len, unique) = Self::slot_entry(page, slot.0);
        if len == LEN_FREE {
            return Ok(());
        }
        let _ = (off, len);
        Self::set_slot_entry(page, slot.0, 0, LEN_FREE, unique);
        Ok(())
    }

    /// Replace the record in `slot` if the new bytes fit on this page
    /// (after compaction); returns `false` when the caller must relocate.
    pub fn try_update(page: &mut Page, slot: SlotId, record: &[u8]) -> Result<bool> {
        if slot.0 >= Self::slot_count(page) {
            return Err(StorageError::Corrupt(format!(
                "update of slot {} beyond directory",
                slot.0
            )));
        }
        let (off, len, unique) = Self::slot_entry(page, slot.0);
        if len == LEN_FREE {
            return Err(StorageError::Corrupt("update of free slot".into()));
        }
        let old_len = Self::stored_len(len);
        if record.len() <= old_len {
            // Shrinks in place; keep the old offset, waste the tail until
            // the next compaction.
            page.data[off as usize..off as usize + record.len()].copy_from_slice(record);
            Self::set_slot_entry(page, slot.0, off, record.len() as u16, unique);
            return Ok(true);
        }
        // Check whether it fits after logically dropping the old copy.
        let alloc = record.len().max(crate::oid::Oid::ENCODED_LEN);
        if Self::total_free(page) + old_len < alloc {
            return Ok(false);
        }
        Self::set_slot_entry(page, slot.0, 0, LEN_FREE, unique);
        if Self::contiguous_free(page) < alloc {
            Self::compact(page);
        }
        let new_end = Self::free_end(page) - alloc;
        page.data[new_end..new_end + record.len()].copy_from_slice(record);
        page.set_u16(4, new_end as u16);
        Self::set_slot_entry(page, slot.0, new_end as u16, record.len() as u16, unique);
        Ok(true)
    }

    /// Turn a live record slot into a forwarding stub pointing at `oid_bytes`.
    pub fn make_forward(page: &mut Page, slot: SlotId, oid_bytes: &[u8]) -> Result<()> {
        debug_assert_eq!(oid_bytes.len(), crate::oid::Oid::ENCODED_LEN);
        let (_, len, unique) = Self::slot_entry(page, slot.0);
        if len == LEN_FREE {
            return Err(StorageError::Corrupt("forwarding a free slot".into()));
        }
        Self::set_slot_entry(page, slot.0, 0, LEN_FREE, unique);
        if Self::contiguous_free(page) < crate::oid::Oid::ENCODED_LEN {
            Self::compact(page);
        }
        let new_end = Self::free_end(page) - crate::oid::Oid::ENCODED_LEN;
        page.data[new_end..new_end + oid_bytes.len()].copy_from_slice(oid_bytes);
        page.set_u16(4, new_end as u16);
        Self::set_slot_entry(page, slot.0, new_end as u16, LEN_FORWARD, unique);
        Ok(())
    }

    /// Slide all live records to the high end of the page, squeezing out
    /// holes left by deletes and shrinking updates.
    pub fn compact(page: &mut Page) {
        let count = Self::slot_count(page);
        let mut live: Vec<(u16, Vec<u8>, u16, u32)> = Vec::new();
        for i in 0..count {
            let (off, len, unique) = Self::slot_entry(page, i);
            if len != LEN_FREE {
                let n = Self::stored_len(len);
                live.push((
                    i,
                    page.data[off as usize..off as usize + n].to_vec(),
                    len,
                    unique,
                ));
            }
        }
        let mut end = PAGE_USABLE;
        for (i, bytes, len, unique) in live {
            end -= bytes.len();
            page.data[end..end + bytes.len()].copy_from_slice(&bytes);
            Self::set_slot_entry(page, i, end as u16, len, unique);
        }
        page.set_u16(4, end as u16);
    }

    /// Iterator over live slots: (slot, stamp, is_forward).
    pub fn live_slots(page: &Page) -> Vec<(SlotId, u32, bool)> {
        let mut out = Vec::new();
        for i in 0..Self::slot_count(page) {
            let (_, len, unique) = Self::slot_entry(page, i);
            if len != LEN_FREE {
                out.push((SlotId(i), unique, len == LEN_FORWARD));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Page {
        let mut p = Page::new();
        SlottedPage::init(&mut p);
        p
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = fresh();
        let (s, u) = SlottedPage::insert(&mut p, b"hello").unwrap();
        assert_eq!(
            SlottedPage::get(&p, s, u).unwrap(),
            SlotContent::Record(b"hello".to_vec())
        );
    }

    #[test]
    fn multiple_records_coexist() {
        let mut p = fresh();
        let ids: Vec<_> = (0..10)
            .map(|i| {
                let rec = vec![i as u8; 16 + i];
                (SlottedPage::insert(&mut p, &rec).unwrap(), rec)
            })
            .collect();
        for ((s, u), rec) in ids {
            assert_eq!(
                SlottedPage::get(&p, s, u).unwrap(),
                SlotContent::Record(rec)
            );
        }
    }

    #[test]
    fn delete_frees_slot_and_reuse_bumps_stamp() {
        let mut p = fresh();
        let (s, u) = SlottedPage::insert(&mut p, b"dead").unwrap();
        SlottedPage::delete(&mut p, s).unwrap();
        assert_eq!(SlottedPage::get_any(&p, s).unwrap(), SlotContent::Free);
        let (s2, u2) = SlottedPage::insert(&mut p, b"new!").unwrap();
        assert_eq!(s2, s, "free slot is reused");
        assert_ne!(u2, u, "stamp bumped so stale OIDs fail");
        assert!(SlottedPage::get(&p, s, u).is_err());
    }

    #[test]
    fn page_fills_and_rejects_overflow() {
        let mut p = fresh();
        let rec = vec![0xabu8; 500];
        let mut n = 0;
        while SlottedPage::fits(&p, rec.len()) {
            SlottedPage::insert(&mut p, &rec).unwrap();
            n += 1;
        }
        assert!(
            n >= 7,
            "a 4K page holds at least 7 500-byte records, got {n}"
        );
        assert!(SlottedPage::insert(&mut p, &rec).is_err());
    }

    #[test]
    fn record_too_large_rejected() {
        let mut p = fresh();
        let err = SlottedPage::insert(&mut p, &vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::RecordTooLarge { .. }));
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut p = fresh();
        let mut slots = Vec::new();
        let rec = vec![7u8; 300];
        while SlottedPage::fits(&p, rec.len()) {
            slots.push(SlottedPage::insert(&mut p, &rec).unwrap());
        }
        // Delete every other record; a 300-byte insert must then succeed via
        // slot reuse + compaction.
        for (i, (s, _)) in slots.iter().enumerate() {
            if i % 2 == 0 {
                SlottedPage::delete(&mut p, *s).unwrap();
            }
        }
        assert!(SlottedPage::fits(&p, 300));
        let (s, u) = SlottedPage::insert(&mut p, &rec).unwrap();
        assert_eq!(
            SlottedPage::get(&p, s, u).unwrap(),
            SlotContent::Record(rec.clone())
        );
        // Survivors intact after the compaction that insert triggered.
        for (i, (s, u)) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(
                    SlottedPage::get(&p, *s, *u).unwrap(),
                    SlotContent::Record(rec.clone())
                );
            }
        }
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = fresh();
        let (s, u) = SlottedPage::insert(&mut p, b"short").unwrap();
        assert!(SlottedPage::try_update(&mut p, s, b"sh").unwrap());
        assert_eq!(
            SlottedPage::get(&p, s, u).unwrap(),
            SlotContent::Record(b"sh".to_vec())
        );
        assert!(SlottedPage::try_update(&mut p, s, &[9u8; 200]).unwrap());
        assert_eq!(
            SlottedPage::get(&p, s, u).unwrap(),
            SlotContent::Record(vec![9u8; 200])
        );
    }

    #[test]
    fn update_signals_relocation_when_page_full() {
        let mut p = fresh();
        let (s, _) = SlottedPage::insert(&mut p, b"victim").unwrap();
        while SlottedPage::fits(&p, 400) {
            SlottedPage::insert(&mut p, &vec![1u8; 400]).unwrap();
        }
        // Growing the victim beyond total free space must ask for relocation.
        let grown = vec![2u8; 3000];
        assert!(!SlottedPage::try_update(&mut p, s, &grown).unwrap());
    }

    #[test]
    fn forwarding_stub_roundtrip() {
        use crate::oid::{FileId, Oid, PageId};
        let mut p = fresh();
        let (s, u) = SlottedPage::insert(&mut p, b"moving").unwrap();
        let target = Oid::new(FileId(3), PageId(9), SlotId(1), 5);
        SlottedPage::make_forward(&mut p, s, &target.to_bytes()).unwrap();
        match SlottedPage::get(&p, s, u).unwrap() {
            SlotContent::Forward(bytes) => assert_eq!(Oid::from_bytes(&bytes), Some(target)),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn checksum_stamp_verify_roundtrip() {
        let mut p = fresh();
        SlottedPage::insert(&mut p, b"payload").unwrap();
        // Unstamped pages (fresh allocations) pass verification.
        assert!(Page::new().verify_checksum().is_ok());
        p.stamp_checksum();
        assert!(p.verify_checksum().is_ok());
        // Any usable-byte flip is caught...
        p.data[100] ^= 0x40;
        let (expected, actual) = p.verify_checksum().unwrap_err();
        assert_ne!(expected, actual);
        p.data[100] ^= 0x40;
        assert!(p.verify_checksum().is_ok());
        // ...and re-stamping after mutation heals the trailer.
        SlottedPage::insert(&mut p, b"more").unwrap();
        assert!(p.verify_checksum().is_err());
        p.stamp_checksum();
        assert!(p.verify_checksum().is_ok());
    }

    #[test]
    fn records_never_reach_the_trailer() {
        let mut p = fresh();
        let rec = vec![0xffu8; 200];
        while SlottedPage::fits(&p, rec.len()) {
            SlottedPage::insert(&mut p, &rec).unwrap();
        }
        SlottedPage::compact(&mut p);
        assert!(
            p.data[PAGE_USABLE..].iter().all(|&b| b == 0),
            "a full, compacted page leaves the trailer untouched"
        );
    }

    #[test]
    fn live_slots_reports_forwards() {
        let mut p = fresh();
        let (s1, _) = SlottedPage::insert(&mut p, b"a").unwrap();
        let (s2, _) = SlottedPage::insert(&mut p, b"b").unwrap();
        SlottedPage::delete(&mut p, s1).unwrap();
        SlottedPage::make_forward(&mut p, s2, &crate::oid::Oid::NULL.to_bytes()).unwrap();
        let live = SlottedPage::live_slots(&p);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, s2);
        assert!(live[0].2, "slot is a forward");
    }
}
