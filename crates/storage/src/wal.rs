//! Write-ahead log (redo-only) and transaction bookkeeping.
//!
//! ESM gave MOOD "backup and recovery of data". We reproduce the property
//! that matters to the kernel: after a crash, every *committed* transaction's
//! page updates are restored and uncommitted ones vanish. The scheme is
//! redo-only with after-images (no-steal at the transaction layer: dirty
//! pages of open transactions are only flushed at commit):
//!
//! * during a transaction, each logical page write appends a
//!   `PageImage { txn, file, page, bytes }` record;
//! * `commit` appends a `Commit` record and forces the log;
//! * recovery scans the log and re-applies the images of committed
//!   transactions, in log order, to the disk.
//!
//! Record framing: `len:u32 | checksum:u32 | kind:u8 | txn:u64 | payload`.
//! A torn tail (checksum or length mismatch) ends recovery at the last
//! complete record, as a real log would.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::disk::Disk;
use crate::error::{Result, StorageError};
use crate::oid::{FileId, PageId};
use crate::page::{Page, PAGE_SIZE};

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_ABORT: u8 = 3;

/// Where log bytes live. In-memory for tests, a file for durability.
pub trait LogStore: Send + Sync {
    fn append(&self, bytes: &[u8]) -> Result<()>;
    fn force(&self) -> Result<()>;
    fn read_all(&self) -> Result<Vec<u8>>;
    fn truncate(&self) -> Result<()>;
}

/// In-memory log store.
#[derive(Default)]
pub struct MemLog {
    buf: Mutex<Vec<u8>>,
}

impl MemLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate a torn write by dropping the last `n` bytes.
    pub fn tear(&self, n: usize) {
        let mut b = self.buf.lock();
        let keep = b.len().saturating_sub(n);
        b.truncate(keep);
    }
}

/// Share one log store between a "before crash" and an "after crash"
/// instance (the crash-simulation harness keeps the bytes, drops the rest).
impl<L: LogStore + ?Sized> LogStore for std::sync::Arc<L> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        (**self).append(bytes)
    }
    fn force(&self) -> Result<()> {
        (**self).force()
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        (**self).read_all()
    }
    fn truncate(&self) -> Result<()> {
        (**self).truncate()
    }
}

impl LogStore for MemLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }
    fn force(&self) -> Result<()> {
        Ok(())
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }
    fn truncate(&self) -> Result<()> {
        self.buf.lock().clear();
        Ok(())
    }
}

/// File-backed log store.
pub struct FileLog {
    path: std::path::PathBuf,
    file: Mutex<std::fs::File>,
}

impl FileLog {
    pub fn open(path: impl Into<std::path::PathBuf>) -> Result<Self> {
        let path = path.into();
        let existed = path.exists();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        if !existed {
            // The file's directory entry must itself be durable, or a
            // metadata crash can lose the (empty) log we just created.
            sync_parent_dir(&path)?;
        }
        Ok(FileLog {
            path,
            file: Mutex::new(file),
        })
    }
}

/// Fsync the directory containing `path` so the entry (creation or new
/// length after truncation) survives a metadata crash.
fn sync_parent_dir(path: &std::path::Path) -> Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

impl LogStore for FileLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        use std::io::Write;
        self.file.lock().write_all(bytes)?;
        Ok(())
    }
    fn force(&self) -> Result<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        // Read through the held handle (append mode ignores the cursor on
        // writes, so seeking for the read is safe under the lock).
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }
    fn truncate(&self) -> Result<()> {
        {
            let f = self.file.lock();
            f.set_len(0)?;
            f.sync_all()?;
        }
        sync_parent_dir(&self.path)
    }
}

/// Rolling checksum shared by log-record framing and the page trailer
/// ([`Page::stamp_checksum`]) so both layers agree on one polynomial.
pub(crate) fn checksum(bytes: &[u8]) -> u32 {
    // Fletcher-ish rolling sum: cheap, catches torn tails.
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for &x in bytes {
        a = a.wrapping_add(x as u32);
        b = b.wrapping_add(a);
    }
    (b << 16) | (a & 0xFFFF)
}

/// Transaction identifier.
pub type TxnId = u64;

/// A parsed log record: `(kind, txn, payload, frame offset)`.
type ParsedRecord = (u8, TxnId, Vec<u8>, u64);

/// Counter snapshot for the log, reported by `SHOW METRICS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (page images + commit + abort markers).
    pub appends: u64,
    /// Forces (fsyncs) of the log to stable storage.
    pub forces: u64,
    /// Page images restored by `recover` over this Wal's lifetime.
    pub recovered: u64,
}

/// The write-ahead log.
pub struct Wal {
    store: Box<dyn LogStore>,
    next_txn: AtomicU64,
    appends: AtomicU64,
    forces: AtomicU64,
    recovered: AtomicU64,
}

impl Wal {
    pub fn new(store: Box<dyn LogStore>) -> Self {
        Wal {
            store,
            next_txn: AtomicU64::new(1),
            appends: AtomicU64::new(0),
            forces: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    /// Lifetime counters (appends, forces, recovered page images).
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            forces: self.forces.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    pub fn begin(&self) -> TxnId {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    fn frame(kind: u8, txn: TxnId, payload: &[u8]) -> Vec<u8> {
        let body_len = 1 + 8 + payload.len();
        let mut rec = Vec::with_capacity(8 + body_len);
        rec.extend_from_slice(&(body_len as u32).to_le_bytes());
        let mut body = Vec::with_capacity(body_len);
        body.push(kind);
        body.extend_from_slice(&txn.to_le_bytes());
        body.extend_from_slice(payload);
        rec.extend_from_slice(&checksum(&body).to_le_bytes());
        rec.extend_from_slice(&body);
        rec
    }

    /// Log the after-image of a page write.
    pub fn log_page_write(
        &self,
        txn: TxnId,
        file: FileId,
        page: PageId,
        data: &Page,
    ) -> Result<()> {
        let mut payload = Vec::with_capacity(8 + PAGE_SIZE);
        payload.extend_from_slice(&file.0.to_le_bytes());
        payload.extend_from_slice(&page.0.to_le_bytes());
        payload.extend_from_slice(&data.data[..]);
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.store
            .append(&Self::frame(KIND_PAGE_IMAGE, txn, &payload))
    }

    /// Commit: append the record and force the log to stable storage.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.store.append(&Self::frame(KIND_COMMIT, txn, &[]))?;
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.store.force()
    }

    /// Abort: appended for log completeness; recovery ignores the txn.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.store.append(&Self::frame(KIND_ABORT, txn, &[]))
    }

    /// Replay committed transactions' page images onto `disk`.
    ///
    /// Returns the number of pages restored. Stops cleanly at a torn tail.
    /// Replay is idempotent: running it again over the same log produces a
    /// byte-identical disk image. A transaction's fate is decided by its
    /// *last* marker record — an `Abort` written after a `Commit` (as the
    /// live system does when the commit force fails ambiguously) wins.
    pub fn recover(&self, disk: &dyn Disk) -> Result<usize> {
        let bytes = self.store.read_all()?;
        let (records, max_txn) = Self::parse_records(&bytes);
        let fate = Self::fates(&records);
        let mut restored = 0usize;
        for (kind, txn, payload, rec_off) in &records {
            if *kind != KIND_PAGE_IMAGE || fate.get(txn) != Some(&KIND_COMMIT) {
                continue;
            }
            if payload.len() != 8 + PAGE_SIZE {
                return Err(StorageError::WalCorrupt { offset: *rec_off });
            }
            let file = FileId(u32::from_le_bytes(payload[0..4].try_into().unwrap()));
            let page = PageId(u32::from_le_bytes(payload[4..8].try_into().unwrap()));
            // Files/pages may not exist yet on the recovered disk image.
            // File ids are allocated sequentially, so creating files walks
            // the id space toward `file`; bail out if the disk's allocator
            // has already moved past it (mismatched disk image).
            let mut guard = file.0 as u64 + 1;
            while !disk.files().contains(&file) {
                let made = disk.create_file()?;
                if made.0 > file.0 || guard == 0 {
                    return Err(StorageError::WalCorrupt { offset: *rec_off });
                }
                guard -= 1;
            }
            while disk.page_count(file)? <= page.0 {
                disk.allocate_page(file)?;
            }
            let mut p = Page::new();
            p.data.copy_from_slice(&payload[8..]);
            // Logged after-images carry whatever trailer the in-memory frame
            // had when it was logged (possibly stale); restamp before the
            // image becomes the page's on-disk truth.
            p.stamp_checksum();
            disk.write_page(file, page, &p)?;
            restored += 1;
        }
        // New transactions must not collide with ids still present in the
        // (untruncated) log, or their records would merge on a later replay.
        let floor = max_txn + 1;
        self.next_txn.fetch_max(floor, Ordering::Relaxed);
        self.recovered.fetch_add(restored as u64, Ordering::Relaxed);
        Ok(restored)
    }

    /// Parse complete, checksummed log records, stopping cleanly at a torn
    /// or corrupt tail. Returns `(kind, txn, payload, frame offset)` tuples
    /// plus the highest transaction id seen.
    fn parse_records(bytes: &[u8]) -> (Vec<ParsedRecord>, u64) {
        let mut records: Vec<ParsedRecord> = Vec::new();
        let mut off = 0usize;
        let mut max_txn = 0u64;
        while off + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            if off + 8 + len > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[off + 8..off + 8 + len];
            if checksum(body) != sum || len < 9 {
                break; // corrupt tail
            }
            let kind = body[0];
            let txn = u64::from_le_bytes(body[1..9].try_into().unwrap());
            max_txn = max_txn.max(txn);
            records.push((kind, txn, body[9..].to_vec(), off as u64));
            off += 8 + len;
        }
        (records, max_txn)
    }

    /// Last marker wins: an abort appended after a commit record (the
    /// live system's answer to an ambiguous commit failure) overrides it.
    fn fates(records: &[(u8, TxnId, Vec<u8>, u64)]) -> std::collections::HashMap<TxnId, u8> {
        let mut fate = std::collections::HashMap::new();
        for (kind, txn, _, _) in records {
            if *kind == KIND_COMMIT || *kind == KIND_ABORT {
                fate.insert(*txn, *kind);
            }
        }
        fate
    }

    /// Single-page repair: the latest *committed* after-image of
    /// `(file, page)` still present in the log, or `None` when the log no
    /// longer covers the page (e.g. truncated by a checkpoint since the
    /// page was last written). The buffer pool uses this to rebuild a page
    /// whose on-disk checksum failed; the returned image is restamped so
    /// it can be written straight back.
    pub fn latest_committed_image(&self, file: FileId, page: PageId) -> Result<Option<Page>> {
        let bytes = self.store.read_all()?;
        let (records, _) = Self::parse_records(&bytes);
        let fate = Self::fates(&records);
        let mut found: Option<Page> = None;
        for (kind, txn, payload, _) in &records {
            if *kind != KIND_PAGE_IMAGE
                || fate.get(txn) != Some(&KIND_COMMIT)
                || payload.len() != 8 + PAGE_SIZE
            {
                continue;
            }
            let rec_file = FileId(u32::from_le_bytes(payload[0..4].try_into().unwrap()));
            let rec_page = PageId(u32::from_le_bytes(payload[4..8].try_into().unwrap()));
            if rec_file == file && rec_page == page {
                let mut p = Page::new();
                p.data.copy_from_slice(&payload[8..]);
                p.stamp_checksum();
                found = Some(p); // keep scanning: log order, last write wins
            }
        }
        Ok(found)
    }

    /// Checkpoint: the caller has flushed the disk; the log can restart.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.truncate()
    }

    /// Raw log size in bytes (for tests and the admin tool).
    pub fn size(&self) -> Result<usize> {
        Ok(self.store.read_all()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn page_with(b: u8) -> Page {
        let mut p = Page::new();
        p.data.fill(b);
        p
    }

    #[test]
    fn committed_txn_is_replayed() {
        let log = MemLog::new();
        // Share the log between "before crash" and "after crash" via reads.
        let wal = Wal::new(Box::new(log));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();

        let t = wal.begin();
        wal.log_page_write(t, f, PageId(0), &page_with(0xAA))
            .unwrap();
        wal.commit(t).unwrap();

        // Crash: the disk never saw the write. Recover from the log.
        let restored = wal.recover(&disk).unwrap();
        assert_eq!(restored, 1);
        let mut p = Page::new();
        disk.read_page(f, PageId(0), &mut p).unwrap();
        assert_eq!(p.data[100], 0xAA);
    }

    #[test]
    fn uncommitted_txn_is_ignored() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();

        let t = wal.begin();
        wal.log_page_write(t, f, PageId(0), &page_with(0xBB))
            .unwrap();
        // no commit
        assert_eq!(wal.recover(&disk).unwrap(), 0);
        let mut p = Page::new();
        disk.read_page(f, PageId(0), &mut p).unwrap();
        assert_eq!(p.data[0], 0, "uncommitted image not applied");
    }

    #[test]
    fn aborted_txn_is_ignored() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();
        let t = wal.begin();
        wal.log_page_write(t, f, PageId(0), &page_with(0xCC))
            .unwrap();
        wal.abort(t).unwrap();
        assert_eq!(wal.recover(&disk).unwrap(), 0);
    }

    #[test]
    fn replay_is_in_log_order_last_write_wins() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();
        let t1 = wal.begin();
        wal.log_page_write(t1, f, PageId(0), &page_with(1)).unwrap();
        wal.commit(t1).unwrap();
        let t2 = wal.begin();
        wal.log_page_write(t2, f, PageId(0), &page_with(2)).unwrap();
        wal.commit(t2).unwrap();
        assert_eq!(wal.recover(&disk).unwrap(), 2);
        let mut p = Page::new();
        disk.read_page(f, PageId(0), &mut p).unwrap();
        assert_eq!(p.data[0], 2);
    }

    #[test]
    fn torn_tail_stops_recovery_cleanly() {
        let log = std::sync::Arc::new(MemLog::new());
        struct Shared(std::sync::Arc<MemLog>);
        impl LogStore for Shared {
            fn append(&self, b: &[u8]) -> Result<()> {
                self.0.append(b)
            }
            fn force(&self) -> Result<()> {
                self.0.force()
            }
            fn read_all(&self) -> Result<Vec<u8>> {
                self.0.read_all()
            }
            fn truncate(&self) -> Result<()> {
                self.0.truncate()
            }
        }
        let wal = Wal::new(Box::new(Shared(log.clone())));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();
        let t1 = wal.begin();
        wal.log_page_write(t1, f, PageId(0), &page_with(7)).unwrap();
        wal.commit(t1).unwrap();
        let t2 = wal.begin();
        wal.log_page_write(t2, f, PageId(0), &page_with(9)).unwrap();
        wal.commit(t2).unwrap();
        // Tear into the middle of t2's commit record.
        log.tear(5);
        // t2's commit is incomplete → only t1 replays.
        assert_eq!(wal.recover(&disk).unwrap(), 1);
        let mut p = Page::new();
        disk.read_page(f, PageId(0), &mut p).unwrap();
        assert_eq!(p.data[0], 7);
    }

    #[test]
    fn recovery_recreates_missing_pages() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        // Log writes to page 3 of a file that only has 0 pages on the
        // recovered image.
        let t = wal.begin();
        wal.log_page_write(t, f, PageId(3), &page_with(5)).unwrap();
        wal.commit(t).unwrap();
        assert_eq!(wal.recover(&disk).unwrap(), 1);
        assert_eq!(disk.page_count(f).unwrap(), 4);
    }

    #[test]
    fn checkpoint_truncates() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let t = wal.begin();
        wal.log_page_write(t, FileId(1), PageId(0), &page_with(1))
            .unwrap();
        wal.commit(t).unwrap();
        assert!(wal.size().unwrap() > 0);
        wal.checkpoint().unwrap();
        assert_eq!(wal.size().unwrap(), 0);
    }

    #[test]
    fn abort_after_commit_overrides_it() {
        // The live system appends an abort when a commit's force fails
        // ambiguously; recovery must honour the later marker.
        let wal = Wal::new(Box::new(MemLog::new()));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();
        let t = wal.begin();
        wal.log_page_write(t, f, PageId(0), &page_with(0xEE))
            .unwrap();
        wal.commit(t).unwrap();
        wal.abort(t).unwrap();
        assert_eq!(wal.recover(&disk).unwrap(), 0);
        let mut p = Page::new();
        disk.read_page(f, PageId(0), &mut p).unwrap();
        assert_eq!(p.data[0], 0, "overridden commit must not replay");
    }

    #[test]
    fn corrupt_record_reports_its_own_offset() {
        // A well-framed page-image record with a short payload sits at
        // offset 0, followed by a valid commit. The error must name the
        // offending record's offset, not the end-of-scan offset.
        let log = MemLog::new();
        log.append(&Wal::frame(KIND_PAGE_IMAGE, 1, &[0u8; 4])).unwrap();
        let wal = Wal::new(Box::new(log));
        wal.commit(1).unwrap();
        let disk = MemDisk::new();
        match wal.recover(&disk) {
            Err(StorageError::WalCorrupt { offset }) => assert_eq!(offset, 0),
            other => panic!("expected WalCorrupt at offset 0, got {other:?}"),
        }
    }

    #[test]
    fn recovery_is_idempotent_and_bumps_txn_floor() {
        let log = std::sync::Arc::new(MemLog::new());
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        {
            let wal = Wal::new(Box::new(log.clone()));
            let t = wal.begin();
            wal.log_page_write(t, f, PageId(2), &page_with(0x5A))
                .unwrap();
            wal.commit(t).unwrap();
        }
        let wal = Wal::new(Box::new(log));
        assert_eq!(wal.recover(&disk).unwrap(), 1);
        let snap = |d: &MemDisk| -> Vec<Vec<u8>> {
            (0..d.page_count(f).unwrap())
                .map(|i| {
                    let mut p = Page::new();
                    d.read_page(f, PageId(i), &mut p).unwrap();
                    p.data.to_vec()
                })
                .collect()
        };
        let first = snap(&disk);
        assert_eq!(wal.recover(&disk).unwrap(), 1);
        assert_eq!(snap(&disk), first, "second replay must be byte-identical");
        // New txns must not reuse ids still in the log.
        assert!(wal.begin() > 1);
    }

    #[test]
    fn stats_count_appends_forces_and_recovered() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        disk.allocate_page(f).unwrap();
        let t = wal.begin();
        wal.log_page_write(t, f, PageId(0), &page_with(1)).unwrap();
        wal.commit(t).unwrap();
        let t2 = wal.begin();
        wal.abort(t2).unwrap();
        assert_eq!(wal.recover(&disk).unwrap(), 1);
        let s = wal.stats();
        assert_eq!(s.appends, 3, "image + commit + abort");
        assert_eq!(s.forces, 1, "only commit forces");
        assert_eq!(s.recovered, 1);
    }

    #[test]
    fn latest_committed_image_is_last_committed_write() {
        let wal = Wal::new(Box::new(MemLog::new()));
        let t1 = wal.begin();
        wal.log_page_write(t1, FileId(1), PageId(0), &page_with(1))
            .unwrap();
        wal.commit(t1).unwrap();
        let t2 = wal.begin();
        wal.log_page_write(t2, FileId(1), PageId(0), &page_with(2))
            .unwrap();
        wal.commit(t2).unwrap();
        let t3 = wal.begin();
        wal.log_page_write(t3, FileId(1), PageId(0), &page_with(3))
            .unwrap(); // never commits — must not win
        let img = wal
            .latest_committed_image(FileId(1), PageId(0))
            .unwrap()
            .expect("page is covered by the log");
        assert_eq!(img.data[0], 2);
        assert!(img.verify_checksum().is_ok(), "repair images come stamped");
        assert!(wal
            .latest_committed_image(FileId(1), PageId(9))
            .unwrap()
            .is_none());
        wal.checkpoint().unwrap();
        assert!(
            wal.latest_committed_image(FileId(1), PageId(0))
                .unwrap()
                .is_none(),
            "checkpoint truncation ends log coverage"
        );
    }

    #[test]
    fn file_log_roundtrip() {
        let path = std::env::temp_dir().join(format!("mood-wal-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::new(Box::new(FileLog::open(&path).unwrap()));
            let t = wal.begin();
            wal.log_page_write(t, FileId(1), PageId(0), &page_with(0x42))
                .unwrap();
            wal.commit(t).unwrap();
        }
        {
            let wal = Wal::new(Box::new(FileLog::open(&path).unwrap()));
            let disk = MemDisk::new();
            assert_eq!(wal.recover(&disk).unwrap(), 1);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
