//! Demonstrates the chunk-parallel execution path: the same MOODSQL query
//! at parallelism 1 and 4 returns identical rows with identical page-access
//! totals (see DESIGN.md §4c).
//!
//! ```sh
//! cargo run -p mood-core --example parallel_query
//! ```

use mood_core::{Answer, Mood};

fn main() {
    let db = Mood::in_memory();
    db.execute("CREATE CLASS Part TUPLE (id Integer, weight Integer, name String)")
        .unwrap();
    for i in 0..2000 {
        db.execute(&format!("new Part <{i}, {}, 'p{i}'>", (i * 37) % 500))
            .unwrap();
    }
    db.collect_stats().unwrap();

    let q = "SELECT p.id, p.weight FROM Part p WHERE p.weight > 250 ORDER BY p.id";

    let run = |label: &str| {
        db.metrics().reset();
        let Answer::Rows(rows) = db.execute(q).unwrap() else {
            panic!("not a query")
        };
        let snap = db.metrics().snapshot();
        println!(
            "{label}: {} rows, pages seq={} rnd={} idx={}, threads recorded={}",
            rows.len(),
            snap.seq_pages,
            snap.rnd_pages,
            snap.idx_pages,
            db.metrics().per_thread_snapshot().len()
        );
        rows
    };

    let sequential = run("parallelism 1");
    db.set_parallelism(4);
    let parallel = run("parallelism 4");
    assert_eq!(sequential, parallel, "results must be byte-identical");
    println!("identical results at parallelism 1 and 4");
}
