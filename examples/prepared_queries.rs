//! The query hot path: the session plan cache and compiled predicate
//! evaluation, on the paper's Vehicle schema (Section 3.1).
//!
//! A repeated statement is parsed, bound and optimized exactly once; every
//! later execution reuses the cached plan and runs its predicates as
//! compiled register programs (the Function Manager's compile-once
//! discipline from Section 2, applied to queries). Schema or statistics
//! changes bump the catalog epoch and invalidate stale plans
//! automatically.
//!
//! ```sh
//! cargo run -p mood-core --example prepared_queries
//! ```

use std::time::Instant;

use mood_core::{Mood, OptimizerConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Mood::in_memory();
    db.set_optimizer_config(OptimizerConfig::paper());

    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain))",
    ] {
        db.execute(ddl)?;
    }

    // A deterministic population: engines cycle through 2/4/6/8 cylinders.
    let catalog = db.catalog();
    let mut trains = Vec::new();
    for i in 0..16i32 {
        let engine = catalog.new_object(
            "VehicleEngine",
            Value::tuple(vec![
                ("size", Value::Integer(1000 + i * 100)),
                ("cylinders", Value::Integer(2 + (i % 4) * 2)),
            ]),
        )?;
        trains.push(catalog.new_object(
            "VehicleDriveTrain",
            Value::tuple(vec![
                ("engine", Value::Ref(engine)),
                (
                    "transmission",
                    Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                ),
            ]),
        )?);
    }
    for i in 0..4096i32 {
        catalog.new_object(
            "Vehicle",
            Value::tuple(vec![
                ("id", Value::Integer(i)),
                ("weight", Value::Integer(700 + (i % 15) * 80)),
                ("drivetrain", Value::Ref(trains[i as usize % trains.len()])),
            ]),
        )?;
    }
    db.execute("CREATE INDEX ON Vehicle(id)")?;
    db.collect_stats()?;

    let sql = "SELECT v.id, v.weight FROM EVERY Vehicle v WHERE v.id = 42 ORDER BY v.id";

    // First execution: a cache miss — the plan is built, compiled and
    // cached. EXPLAIN ANALYZE reports the fresh plan with its compile cost.
    println!("== first execution (fresh plan) ==");
    println!("{}", db.explain_analyze(sql)?);

    // Second execution: a hit — no parse, no bind, no optimize.
    println!("== second execution (cached plan) ==");
    println!("{}", db.explain_analyze(sql)?);

    // DDL bumps the catalog epoch: the cached plan is stale and the next
    // lookup re-prepares (an invalidation + a miss in the counters).
    db.execute("CREATE CLASS Depot TUPLE (name String(16))")?;
    println!("== after DDL (epoch bumped, plan re-prepared) ==");
    println!("{}", db.explain_analyze(sql)?);

    // The warm path in numbers. (Disabling the cache clears it, so this
    // comparison runs last.)
    let n = 2000;
    let t0 = Instant::now();
    for _ in 0..n {
        db.execute(sql)?;
    }
    let warm = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    db.set_plan_cache_enabled(false);
    db.set_compiled_predicates(false);
    let t0 = Instant::now();
    for _ in 0..n {
        db.execute(sql)?;
    }
    let cold = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    let m = db.engine_metrics();
    println!("warm {warm:.1} us/query vs cold {cold:.1} us/query ({:.2}x)\n", cold / warm);
    println!(
        "plan cache: {} hits, {} misses, {} evictions, {} invalidations; compile {:.3} ms",
        m.plan_cache.hits,
        m.plan_cache.misses,
        m.plan_cache.evictions,
        m.plan_cache.invalidations,
        m.compile_ns as f64 / 1e6
    );
    Ok(())
}
