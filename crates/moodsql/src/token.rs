//! MOODSQL lexer.

use crate::error::{Result, SqlError};

/// Token kinds. Keywords are case-insensitive and lexed as [`Tok::Kw`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Kw(Kw),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

/// MOODSQL keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Every,
    And,
    Or,
    Not,
    Between,
    Create,
    Drop,
    Class,
    Tuple,
    Methods,
    Inherits,
    New,
    Index,
    On,
    Unique,
    Hash,
    Btree,
    Reference,
    Set,
    List,
    Define,
    Method,
    Returns,
    As,
    True,
    False,
    Null,
    Asc,
    Desc,
    Distinct,
    Delete,
    Update,
    Explain,
    Analyze,
    Show,
    Metrics,
    Begin,
    Transaction,
    Commit,
    Rollback,
}

impl Kw {
    fn parse(word: &str) -> Option<Kw> {
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Kw::Select,
            "FROM" => Kw::From,
            "WHERE" => Kw::Where,
            "GROUP" => Kw::Group,
            "BY" => Kw::By,
            "HAVING" => Kw::Having,
            "ORDER" => Kw::Order,
            "EVERY" => Kw::Every,
            "AND" => Kw::And,
            "OR" => Kw::Or,
            "NOT" => Kw::Not,
            "BETWEEN" => Kw::Between,
            "CREATE" => Kw::Create,
            "DROP" => Kw::Drop,
            "CLASS" => Kw::Class,
            "TUPLE" => Kw::Tuple,
            "METHODS" => Kw::Methods,
            "INHERITS" => Kw::Inherits,
            "NEW" => Kw::New,
            "INDEX" => Kw::Index,
            "ON" => Kw::On,
            "UNIQUE" => Kw::Unique,
            "HASH" => Kw::Hash,
            "BTREE" => Kw::Btree,
            "REFERENCE" => Kw::Reference,
            "SET" => Kw::Set,
            "LIST" => Kw::List,
            "DEFINE" => Kw::Define,
            "METHOD" => Kw::Method,
            "RETURNS" => Kw::Returns,
            "AS" => Kw::As,
            "TRUE" => Kw::True,
            "FALSE" => Kw::False,
            "NULL" => Kw::Null,
            "ASC" => Kw::Asc,
            "DESC" => Kw::Desc,
            "DISTINCT" => Kw::Distinct,
            "DELETE" => Kw::Delete,
            "UPDATE" => Kw::Update,
            "EXPLAIN" => Kw::Explain,
            "ANALYZE" => Kw::Analyze,
            "SHOW" => Kw::Show,
            "METRICS" => Kw::Metrics,
            "BEGIN" => Kw::Begin,
            "TRANSACTION" => Kw::Transaction,
            "COMMIT" => Kw::Commit,
            "ROLLBACK" => Kw::Rollback,
            _ => return None,
        })
    }
}

/// Tokenize a statement.
pub fn lex(src: &str) -> Result<Vec<Tok>> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // -- line comments
        if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || (chars[i] == '.'
                        && !is_float
                        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                toks.push(Tok::Float(text.parse().map_err(|e| SqlError::Lex {
                    position: start,
                    message: format!("bad float {text}: {e}"),
                })?));
            } else {
                toks.push(Tok::Int(text.parse().map_err(|e| SqlError::Lex {
                    position: start,
                    message: format!("bad integer {text}: {e}"),
                })?));
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            match Kw::parse(&word) {
                Some(kw) => toks.push(Tok::Kw(kw)),
                None => toks.push(Tok::Ident(word)),
            }
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = c;
            i += 1;
            let mut out = String::new();
            loop {
                match chars.get(i) {
                    None => {
                        return Err(SqlError::Lex {
                            position: i,
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some(&ch) if ch == quote => {
                        // Doubled quote escapes itself.
                        if chars.get(i + 1) == Some(&quote) {
                            out.push(quote);
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(&ch) => {
                        out.push(ch);
                        i += 1;
                    }
                }
            }
            toks.push(Tok::Str(out));
            continue;
        }
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let sym: &'static str = match two.as_str() {
            "<>" | "<=" | ">=" | "::" => {
                i += 2;
                match two.as_str() {
                    "<>" => "<>",
                    "<=" => "<=",
                    ">=" => ">=",
                    _ => "::",
                }
            }
            _ => {
                i += 1;
                match c {
                    ':' => ":",
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    ';' => ";",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    '{' => "{",
                    '}' => "}",
                    other => {
                        return Err(SqlError::Lex {
                            position: i - 1,
                            message: format!("unexpected character '{other}'"),
                        })
                    }
                }
            }
        };
        toks.push(Tok::Sym(sym));
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select FROM WhErE").unwrap();
        assert_eq!(
            toks,
            vec![Tok::Kw(Kw::Select), Tok::Kw(Kw::From), Tok::Kw(Kw::Where)]
        );
    }

    #[test]
    fn paper_query_lexes() {
        let toks = lex(
            "SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v \
             WHERE c.drivetrain.transmission = 'AUTOMATIC' AND \
             c.drivetrain.engine = v AND v.cylinders > 4",
        )
        .unwrap();
        assert!(toks.contains(&Tok::Kw(Kw::Every)));
        assert!(toks.contains(&Tok::Sym("-")));
        assert!(toks.contains(&Tok::Str("AUTOMATIC".into())));
        assert!(toks.contains(&Tok::Int(4)));
    }

    #[test]
    fn numbers_and_floats() {
        let toks = lex("42 3.25 2.").unwrap();
        // "2." lexes as Int(2) then Sym(".") — dots only join digits.
        assert_eq!(
            toks,
            vec![Tok::Int(42), Tok::Float(3.25), Tok::Int(2), Tok::Sym(".")]
        );
    }

    #[test]
    fn string_escapes_and_both_quotes() {
        let toks = lex("'it''s' \"double\"").unwrap();
        assert_eq!(
            toks,
            vec![Tok::Str("it's".into()), Tok::Str("double".into())]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the projection\n c").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn two_char_symbols() {
        let toks = lex("<> <= >= :: <").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Sym("<>"),
                Tok::Sym("<="),
                Tok::Sym(">="),
                Tok::Sym("::"),
                Tok::Sym("<")
            ]
        );
    }

    #[test]
    fn unknown_character_errors() {
        assert!(matches!(lex("SELECT @"), Err(SqlError::Lex { .. })));
    }
}
