//! Deep equality — the equality the paper's `DupElim` uses on extents
//! (Table 3: "Extent of the distinct object according to the *deep equality
//! check*").
//!
//! Deep equality dereferences `Ref` values through a [`Resolver`] and
//! compares the referenced objects' *values*, recursively, with cycle
//! detection (two objects on a reference cycle are deep-equal if their
//! value graphs are bisimilar up to the visited set).

use mood_storage::Oid;

use crate::value::Value;

/// Access to stored objects, provided by the extent/catalog layer.
pub trait Resolver {
    /// The value of the object `oid`, or `None` if it is dangling.
    fn resolve(&self, oid: Oid) -> Option<Value>;
}

/// A resolver over an in-memory map (tests, small examples).
impl Resolver for std::collections::HashMap<Oid, Value> {
    fn resolve(&self, oid: Oid) -> Option<Value> {
        self.get(&oid).cloned()
    }
}

/// Deep (value) equality with dereferencing.
pub fn deep_eq(a: &Value, b: &Value, resolver: &dyn Resolver) -> bool {
    deep_eq_inner(a, b, resolver, &mut Vec::new())
}

fn deep_eq_inner(
    a: &Value,
    b: &Value,
    resolver: &dyn Resolver,
    visiting: &mut Vec<(Oid, Oid)>,
) -> bool {
    match (a, b) {
        (Value::Ref(x), Value::Ref(y)) => {
            if x == y {
                return true;
            }
            // Already comparing this pair further up the graph: assume equal
            // (coinductive step for cyclic structures).
            if visiting.contains(&(*x, *y)) {
                return true;
            }
            let (Some(va), Some(vb)) = (resolver.resolve(*x), resolver.resolve(*y)) else {
                return false;
            };
            visiting.push((*x, *y));
            let eq = deep_eq_inner(&va, &vb, resolver, visiting);
            visiting.pop();
            eq
        }
        (Value::Ref(x), other) | (other, Value::Ref(x)) => {
            let Some(vx) = resolver.resolve(*x) else {
                return false;
            };
            deep_eq_inner(&vx, other, resolver, visiting)
        }
        (Value::Tuple(fa), Value::Tuple(fb)) => {
            fa.len() == fb.len()
                && fa.iter().zip(fb).all(|((na, va), (nb, vb))| {
                    na == nb && deep_eq_inner(va, vb, resolver, visiting)
                })
        }
        (Value::Set(xs), Value::Set(ys)) => {
            // Set deep-equality: mutual containment (quadratic; extents are
            // deduplicated once per DupElim, and the algebra layer hashes
            // shallow keys first).
            xs.len() == ys.len()
                && xs
                    .iter()
                    .all(|x| ys.iter().any(|y| deep_eq_inner(x, y, resolver, visiting)))
                && ys
                    .iter()
                    .all(|y| xs.iter().any(|x| deep_eq_inner(x, y, resolver, visiting)))
        }
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| deep_eq_inner(x, y, resolver, visiting))
        }
        (x, y) => x.equals(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::{FileId, PageId, SlotId};
    use std::collections::HashMap;

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(1), PageId(n), SlotId(0), 1)
    }

    #[test]
    fn atoms_use_value_equality() {
        let store = HashMap::new();
        assert!(deep_eq(&Value::Integer(2), &Value::Float(2.0), &store));
        assert!(!deep_eq(&Value::Integer(2), &Value::Integer(3), &store));
    }

    #[test]
    fn identical_refs_equal_without_resolution() {
        let store = HashMap::new(); // even a dangling ref equals itself
        assert!(deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(1)), &store));
    }

    #[test]
    fn distinct_refs_to_equal_values_are_deep_equal() {
        let mut store = HashMap::new();
        store.insert(oid(1), Value::tuple(vec![("size", Value::Integer(2000))]));
        store.insert(oid(2), Value::tuple(vec![("size", Value::Integer(2000))]));
        assert!(deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(2)), &store));
        store.insert(oid(3), Value::tuple(vec![("size", Value::Integer(999))]));
        assert!(!deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(3)), &store));
    }

    #[test]
    fn ref_compares_against_inline_value() {
        let mut store = HashMap::new();
        store.insert(oid(1), Value::Integer(5));
        assert!(deep_eq(&Value::Ref(oid(1)), &Value::Integer(5), &store));
        assert!(deep_eq(&Value::Integer(5), &Value::Ref(oid(1)), &store));
    }

    #[test]
    fn dangling_refs_are_unequal() {
        let store = HashMap::new();
        assert!(!deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(2)), &store));
    }

    #[test]
    fn nested_graph_equality() {
        let mut store = HashMap::new();
        // Two cars referencing structurally equal engines.
        store.insert(oid(10), Value::tuple(vec![("cyl", Value::Integer(6))]));
        store.insert(oid(11), Value::tuple(vec![("cyl", Value::Integer(6))]));
        store.insert(
            oid(1),
            Value::tuple(vec![
                ("id", Value::Integer(1)),
                ("engine", Value::Ref(oid(10))),
            ]),
        );
        store.insert(
            oid(2),
            Value::tuple(vec![
                ("id", Value::Integer(1)),
                ("engine", Value::Ref(oid(11))),
            ]),
        );
        assert!(deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(2)), &store));
    }

    #[test]
    fn cyclic_graphs_terminate_and_compare() {
        let mut store = HashMap::new();
        // a -> b -> a and c -> d -> c, all carrying the same payload.
        store.insert(
            oid(1),
            Value::tuple(vec![("v", Value::Integer(1)), ("next", Value::Ref(oid(2)))]),
        );
        store.insert(
            oid(2),
            Value::tuple(vec![("v", Value::Integer(1)), ("next", Value::Ref(oid(1)))]),
        );
        store.insert(
            oid(3),
            Value::tuple(vec![("v", Value::Integer(1)), ("next", Value::Ref(oid(4)))]),
        );
        store.insert(
            oid(4),
            Value::tuple(vec![("v", Value::Integer(1)), ("next", Value::Ref(oid(3)))]),
        );
        assert!(deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(3)), &store));
        // Different payload on the cycle → unequal.
        store.insert(
            oid(5),
            Value::tuple(vec![("v", Value::Integer(9)), ("next", Value::Ref(oid(5)))]),
        );
        assert!(!deep_eq(&Value::Ref(oid(1)), &Value::Ref(oid(5)), &store));
    }

    #[test]
    fn set_deep_equality_order_insensitive() {
        let mut store = HashMap::new();
        store.insert(oid(1), Value::Integer(1));
        store.insert(oid(2), Value::Integer(2));
        let a = Value::Set(vec![Value::Ref(oid(1)), Value::Integer(2)]);
        let b = Value::Set(vec![Value::Integer(2), Value::Integer(1)]);
        assert!(deep_eq(&a, &b, &store));
    }
}
