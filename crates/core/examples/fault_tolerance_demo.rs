//! Storage fault tolerance, end to end through the public `Mood` API:
//! a seeded bit flip on a device write is caught by the page checksum
//! and repaired in place from the WAL's last committed after-image; a
//! burst of transient I/O failures is ridden out by the retrying disk;
//! and a (simulated) persistent device failure flips the engine to
//! read-only degraded mode until healed. Run with
//! `cargo run --release -p mood-core --example fault_tolerance_demo`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mood_core::{Answer, Mood, Value};
use mood_storage::{Disk, FaultPlan, FaultyDisk, FileDisk, FileLog, RetryDisk, StorageManager};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mood-ft-demo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_with(dir: &Path, disk: Arc<dyn Disk>) -> Mood {
    let log = Box::new(FileLog::open(dir.join("wal.log")).unwrap());
    let sm = StorageManager::with_parts(disk, log, 8).unwrap();
    Mood::open_with_storage(Arc::new(sm), dir).unwrap()
}

fn seed_accounts(db: &Mood) {
    db.execute("CREATE CLASS Account TUPLE (id Integer, balance Integer, pad String)")
        .unwrap();
    db.execute("CREATE UNIQUE BTREE INDEX ON Account(id)")
        .unwrap();
    let pad = "x".repeat(300);
    for i in 1..=120 {
        db.execute(&format!("new Account <{i}, {}, '{pad}'>", i * 10))
            .unwrap();
    }
}

fn balance_total(db: &Mood) -> i64 {
    let mut total = 0i64;
    let mut cur = db.query("SELECT a.balance FROM Account a").unwrap();
    while let Some(row) = cur.next() {
        let Value::Integer(bal) = row[0] else {
            panic!("non-integer balance: {:?}", row[0]);
        };
        total += bal as i64;
    }
    total
}

fn metric(db: &Mood, name: &str) -> String {
    let Answer::Rows(result) = db.execute("SHOW METRICS").unwrap() else {
        panic!("SHOW METRICS must return rows");
    };
    result
        .rows
        .iter()
        .find(|row| row[0] == Value::String(name.into()))
        .map(|row| match &row[1] {
            Value::String(s) => s.clone(),
            other => format!("{other:?}"),
        })
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

const EXPECTED_TOTAL: i64 = 120 * 121 / 2 * 10;

fn main() {
    // --- 1. Silent corruption: checksum catches it, the WAL repairs it.
    // Arm a seeded one-byte flip on successive device operations until
    // one lands on a page write-back (the pool is 8 frames, so the
    // 120-row working set keeps evicting committed pages); the next
    // read of that page fails its checksum and is repaired from the
    // log's last committed after-image.
    let mut repaired = false;
    for k in 6..=120 {
        let dir = fresh_dir("flip");
        let plan = FaultPlan::bit_flip_at(k, 0x5EED ^ k);
        let fd = FileDisk::open(dir.join("pages")).unwrap();
        let db = open_with(&dir, Arc::new(FaultyDisk::with_plan(fd, plan.clone())));
        seed_accounts(&db);
        assert_eq!(balance_total(&db), EXPECTED_TOTAL);
        let repairs = metric(&db, "page.repairs");
        if repairs != "0" {
            println!("bit flip armed at device op {k}, fired at {:?}", plan.fired_at());
            println!("  scan total   : {EXPECTED_TOTAL} (correct despite the corruption)");
            println!("  page.repairs : {repairs}");
            repaired = true;
            let _ = std::fs::remove_dir_all(&dir);
            break;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(repaired, "no armed op landed on a write-back");

    // --- 2. Transient I/O trouble: the retrying disk rides it out.
    // Seed cleanly, then reopen with the first three device operations
    // failing (fail-then-heal). Recovery's first page write hits the
    // faults; RetryDisk retries with backoff 1/2/4 ms and the open —
    // and everything after it — succeeds.
    let dir = fresh_dir("retry");
    {
        let fd = FileDisk::open(dir.join("pages")).unwrap();
        let db = open_with(&dir, Arc::new(fd));
        seed_accounts(&db);
    }
    let fd = FileDisk::open(dir.join("pages")).unwrap();
    let faulty = FaultyDisk::with_plan(fd, FaultPlan::fail_n_then_heal(3));
    let db = open_with(&dir, Arc::new(RetryDisk::new(faulty)));
    assert_eq!(balance_total(&db), EXPECTED_TOTAL);
    println!("three injected I/O failures on reopen:");
    println!("  io.retries   : {}", metric(&db, "io.retries"));
    println!("  io.gave_up   : {}", metric(&db, "io.gave_up"));

    // --- 3. Persistent failure: degraded (read-only) mode, healable.
    let health = db.storage().health();
    health.mark_degraded("demo: simulated device failure");
    let refused = db.execute("new Account <121, 1210, 'y'>").unwrap_err();
    println!("degraded mode:");
    println!("  write refused: {refused}");
    println!("  reads still OK: total = {}", balance_total(&db));
    println!("  storage.degraded = {}", metric(&db, "storage.degraded"));
    health.heal();
    db.execute("new Account <121, 1210, 'y'>").unwrap();
    println!("  healed; storage.degraded = {}", metric(&db, "storage.degraded"));
    let _ = std::fs::remove_dir_all(&dir);
}
