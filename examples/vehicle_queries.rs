//! The paper's Vehicle database (Section 3.1) at small scale: the worked
//! queries of Sections 3 and 8 run end to end, with their access plans.
//!
//! ```sh
//! cargo run -p mood-core --example vehicle_queries
//! ```

use mood_core::{Mood, OptimizerConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Mood::in_memory();
    db.set_optimizer_config(OptimizerConfig::paper());

    // The exact DDL of Section 3.1 (methods' bodies come later, through
    // the Function Manager).
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer)",
        "CREATE CLASS Company TUPLE (name String(32), location String(32), \
         president REFERENCE (Employee))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), manufacturer REFERENCE (Company)) \
         METHODS: lbweight () Float,",
        "CREATE CLASS Automobile INHERITS FROM Vehicle",
        "CREATE CLASS JapaneseAuto INHERITS FROM Automobile",
    ] {
        db.execute(ddl)?;
    }
    // int Vehicle::lbweight() { return weight*2.2075; } — run-time linked.
    db.execute("DEFINE METHOD Vehicle::lbweight() RETURNS Float AS 'weight * 2.2075'")?;

    // A small but structured population: 4 companies, 32 engines,
    // 32 drivetrains, 96 vehicles across the hierarchy.
    let catalog = db.catalog();
    let mut companies = Vec::new();
    for (name, loc) in [
        ("BMW", "Munich"),
        ("Toyota", "Aichi"),
        ("Honda", "Tokyo"),
        ("Ford", "Detroit"),
    ] {
        companies.push(catalog.new_object(
            "Company",
            Value::tuple(vec![
                ("name", Value::string(name)),
                ("location", Value::string(loc)),
            ]),
        )?);
    }
    let mut trains = Vec::new();
    for i in 0..32 {
        let engine = catalog.new_object(
            "VehicleEngine",
            Value::tuple(vec![
                ("size", Value::Integer(1000 + (i % 8) * 250)),
                ("cylinders", Value::Integer(2 + (i % 4) * 2)),
            ]),
        )?;
        trains.push(catalog.new_object(
            "VehicleDriveTrain",
            Value::tuple(vec![
                ("engine", Value::Ref(engine)),
                (
                    "transmission",
                    Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                ),
            ]),
        )?);
    }
    for i in 0..96i32 {
        let class = match i % 3 {
            0 => "Vehicle",
            1 => "Automobile",
            _ => "JapaneseAuto",
        };
        let company = if class == "JapaneseAuto" {
            companies[1 + (i as usize % 2)] // Toyota or Honda
        } else {
            companies[(i as usize * 7) % 4]
        };
        catalog.new_object(
            class,
            Value::tuple(vec![
                ("id", Value::Integer(i)),
                ("weight", Value::Integer(800 + (i % 20) * 60)),
                ("drivetrain", Value::Ref(trains[i as usize % trains.len()])),
                ("manufacturer", Value::Ref(company)),
            ]),
        )?;
    }
    db.collect_stats()?;

    // ---- The Section 3.1 example query ----
    let q31 = "SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v \
               WHERE c.drivetrain.transmission = 'AUTOMATIC' AND \
               c.drivetrain.engine = v AND v.cylinders > 4";
    println!("== Section 3.1: automatic, >4 cylinders, non-Japanese ==");
    let mut cur = db.query(q31)?;
    println!("  {} automobiles match", cur.len());
    if let Some(row) = cur.next() {
        if let Value::Ref(oid) = &row[0] {
            println!("  first match, object graph:");
            for line in db.render_object(*oid, 1).lines() {
                println!("    {line}");
            }
        }
    }

    // ---- Example 8.1 ----
    let q81 = "SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'BMW' AND \
               v.drivetrain.engine.cylinders = 2";
    println!("\n== Example 8.1 plan (PathSelInfo + JOIN tree) ==");
    print!("{}", db.explain(q81)?);
    let cur = db.query(q81)?;
    println!("  → {} vehicles", cur.len());

    // ---- Example 8.2 ----
    let q82 = "SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2";
    println!("\n== Example 8.2 plan ==");
    print!("{}", db.explain(q82)?);
    let cur = db.query(q82)?;
    println!("  → {} vehicles", cur.len());

    // ---- Methods in queries ----
    println!("\n== heaviest vehicles in pounds (method in projection) ==");
    let mut cur = db.query(
        "SELECT v.id, v.lbweight() FROM EVERY Vehicle v \
         WHERE v.lbweight() > 4200 ORDER BY v.id",
    )?;
    while let Some(row) = cur.next() {
        println!("  vehicle {}: {} lb", row[0], row[1]);
    }

    // ---- Aggregation over a path ----
    println!("\n== vehicles per transmission ==");
    let mut cur = db.query(
        "SELECT v.drivetrain.transmission, COUNT(*) FROM EVERY Vehicle v \
         GROUP BY v.drivetrain.transmission ORDER BY v.drivetrain.transmission",
    )?;
    while let Some(row) = cur.next() {
        println!("  {}: {}", row[0], row[1]);
    }
    Ok(())
}
