//! Binder: lower a parsed `SELECT` to the optimizer's [`QuerySpec`].
//!
//! The binder implements the predicate classification of Section 7:
//!
//! * `v.A θ c` with `A` atomic → *immediate selection*;
//! * `v.A1…Am θ c` through references → *path selection*;
//! * explicit joins `v.A1…An = w` (a path equated to another range
//!   variable, as in the Section 3.1 example query) are rewritten: `w`
//!   becomes the path's terminal variable and `w`'s own atomic predicates
//!   extend the path — turning the explicit join back into the implicit
//!   join the optimizer handles;
//! * everything else (method calls, arithmetic, cross-variable
//!   comparisons) → *other selection*, evaluated last.

use std::collections::HashMap;

use mood_catalog::Catalog;
use mood_optimizer::{BoolExpr, Const, PredSpec, QuerySpec};

use crate::ast::{CmpOp, Expr, FromItem, Lit, PathRef, SelectStmt, Statement};
use crate::error::{Result, SqlError};

/// How a statement interacts with the transaction machinery — the
/// binder-level classification the session dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// `BEGIN` / `COMMIT` / `ROLLBACK` themselves.
    Txn,
    /// Schema-changing statements. These autocommit and are refused inside
    /// an explicit transaction: rolling back pages alone would leave the
    /// in-memory catalog disagreeing with them.
    Ddl,
    /// Object-mutating statements (`new`, `UPDATE`, `DELETE`) — the ones a
    /// transaction's atomicity is about.
    Dml,
    /// Pure reads (`SELECT`, `EXPLAIN`): no transaction machinery needed.
    Query,
}

/// Classify a parsed statement for transaction dispatch.
pub fn classify(stmt: &Statement) -> StmtKind {
    match stmt {
        Statement::Begin | Statement::Commit | Statement::Rollback => StmtKind::Txn,
        Statement::CreateClass(_)
        | Statement::DropClass(_)
        | Statement::CreateIndex { .. }
        | Statement::DefineMethod { .. }
        | Statement::DropMethod { .. } => StmtKind::Ddl,
        Statement::NewObject { .. } | Statement::Delete { .. } | Statement::Update { .. } => {
            StmtKind::Dml
        }
        Statement::Select(_)
        | Statement::Explain(_)
        | Statement::ExplainAnalyze(_)
        | Statement::ShowMetrics => StmtKind::Query,
    }
}

/// The lowering result.
#[derive(Debug, Clone)]
pub struct Lowered {
    pub spec: QuerySpec,
    /// The FROM item the spec is rooted at.
    pub root: FromItem,
    /// Range variables rewritten into paths: user var → the path prefix
    /// (from the root var) that reaches it.
    pub rewritten_vars: HashMap<String, Vec<String>>,
    /// FROM items the rewrite could not absorb (beyond the root): the
    /// executor falls back to a nested-loop product for these.
    pub unabsorbed: Vec<FromItem>,
}

/// Is this path's tail atomic / traversable, judged by the catalog?
fn classify_path(catalog: &Catalog, class: &str, segments: &[String]) -> PathShape {
    let mut cur = class.to_string();
    for (i, seg) in segments.iter().enumerate() {
        let Ok(attrs) = catalog.effective_attributes(&cur) else {
            return PathShape::Opaque;
        };
        let Some(attr) = attrs.iter().find(|a| a.name == *seg) else {
            return PathShape::Opaque;
        };
        let last = i + 1 == segments.len();
        match attr.ty.referenced_class() {
            Some(target) => {
                if last {
                    return PathShape::EndsAtReference;
                }
                cur = target.to_string();
            }
            None => {
                if last && attr.ty.is_atomic() {
                    return if segments.len() == 1 {
                        PathShape::Immediate
                    } else {
                        PathShape::PathToAtomic
                    };
                }
                return PathShape::Opaque;
            }
        }
    }
    PathShape::Opaque
}

#[derive(Debug, PartialEq, Eq)]
enum PathShape {
    /// Single atomic attribute of the root class.
    Immediate,
    /// Multi-hop path ending at an atomic attribute.
    PathToAtomic,
    /// Path ending at a reference attribute (joinable to a variable).
    EndsAtReference,
    /// Not resolvable through the catalog.
    Opaque,
}

fn lit_to_const(l: &Lit) -> Option<Const> {
    Some(match l {
        Lit::Int(i) => Const::Num(*i as f64),
        Lit::Float(x) => Const::Num(*x),
        Lit::Str(s) => Const::Str(s.clone()),
        Lit::Bool(b) => Const::Bool(*b),
        Lit::Null => return None,
    })
}

/// Lower a SELECT into a [`QuerySpec`] rooted at its first FROM item.
pub fn lower(catalog: &Catalog, stmt: &SelectStmt) -> Result<Lowered> {
    let root = stmt
        .from
        .first()
        .cloned()
        .ok_or_else(|| SqlError::Bind("SELECT requires at least one FROM item".into()))?;
    catalog.class(&root.class)?;
    let other_vars: HashMap<String, FromItem> = stmt
        .from
        .iter()
        .skip(1)
        .map(|f| (f.var.clone(), f.clone()))
        .collect();

    // First pass over the (pre-DNF) expression: find rewritable explicit
    // joins `root-path = var`, collecting var → path prefix.
    let mut rewritten: HashMap<String, Vec<String>> = HashMap::new();
    if let Some(w) = &stmt.where_clause {
        collect_var_joins(catalog, w, &root, &other_vars, &mut rewritten);
    }

    // Validate variable and attribute references before lowering.
    if let Some(w) = &stmt.where_clause {
        validate_refs(catalog, w, stmt)?;
    }
    for e in &stmt.projection {
        validate_refs(catalog, e, stmt)?;
    }

    // Build the Boolean tree of PredSpec leaves.
    let tree = match &stmt.where_clause {
        Some(w) => Some(to_bool_expr(catalog, w, &root, &rewritten)?),
        None => None,
    };
    let terms: Vec<Vec<PredSpec>> = match tree {
        Some(t) => t.to_dnf(),
        None => vec![Vec::new()],
    };

    let mut spec = QuerySpec::new(&root.var, &root.class);
    spec.every = root.every;
    spec.minus = root.minus.clone();
    spec.terms = terms;
    spec.projection = stmt.projection.iter().map(Expr::render).collect();
    spec.group_by = stmt.group_by.iter().map(PathRef::render).collect();
    spec.having = stmt.having.as_ref().map(Expr::render);
    spec.order_by = stmt.order_by.iter().map(|(p, _)| p.render()).collect();

    let unabsorbed: Vec<FromItem> = stmt
        .from
        .iter()
        .skip(1)
        .filter(|f| !rewritten.contains_key(&f.var))
        .cloned()
        .collect();

    Ok(Lowered {
        spec,
        root,
        rewritten_vars: rewritten,
        unabsorbed,
    })
}

/// Walk an expression validating that every path's range variable is in
/// scope and its first attribute exists on the variable's class (deeper
/// segments are checked at execution, where dynamic types are known).
fn validate_refs(catalog: &Catalog, e: &Expr, stmt: &SelectStmt) -> Result<()> {
    let check_path = |p: &PathRef| -> Result<()> {
        let Some(item) = stmt.from.iter().find(|f| f.var == p.var) else {
            return Err(SqlError::Bind(format!("unknown range variable {}", p.var)));
        };
        if let Some(first) = p.segments.first() {
            let attrs = catalog.effective_attributes(&item.class)?;
            if !attrs.iter().any(|a| &a.name == first) {
                return Err(SqlError::Bind(format!(
                    "class {} has no attribute {first}",
                    item.class
                )));
            }
        }
        Ok(())
    };
    match e {
        Expr::Path(p) => check_path(p)?,
        Expr::MethodCall { base, args, .. } => {
            // Only the variable scope is checkable (the method may be
            // late-bound on a subclass).
            if !stmt.from.iter().any(|f| f.var == base.var) {
                return Err(SqlError::Bind(format!(
                    "unknown range variable {}",
                    base.var
                )));
            }
            for a in args {
                validate_refs(catalog, a, stmt)?;
            }
        }
        Expr::Agg { arg: Some(a), .. } => validate_refs(catalog, a, stmt)?,
        Expr::Compare { left, right, .. } => {
            validate_refs(catalog, left, stmt)?;
            validate_refs(catalog, right, stmt)?;
        }
        Expr::Between { expr, lo, hi } => {
            validate_refs(catalog, expr, stmt)?;
            validate_refs(catalog, lo, stmt)?;
            validate_refs(catalog, hi, stmt)?;
        }
        Expr::And(parts) | Expr::Or(parts) => {
            for p in parts {
                validate_refs(catalog, p, stmt)?;
            }
        }
        Expr::Not(inner) => validate_refs(catalog, inner, stmt)?,
        Expr::Arith { left, right, .. } => {
            validate_refs(catalog, left, stmt)?;
            validate_refs(catalog, right, stmt)?;
        }
        Expr::Agg { arg: None, .. } | Expr::Literal(_) => {}
    }
    Ok(())
}

/// Find `root-path = var` equalities (at any polarity-safe position: we
/// only rewrite joins under pure AND/OR structure, which MOODSQL's
/// reference equality joins always are).
fn collect_var_joins(
    catalog: &Catalog,
    e: &Expr,
    root: &FromItem,
    other_vars: &HashMap<String, FromItem>,
    out: &mut HashMap<String, Vec<String>>,
) {
    match e {
        Expr::And(parts) | Expr::Or(parts) => {
            for p in parts {
                collect_var_joins(catalog, p, root, other_vars, out);
            }
        }
        Expr::Compare {
            op: CmpOp::Eq,
            left,
            right,
        } => {
            let (path, var) = match (&**left, &**right) {
                (Expr::Path(p), Expr::Path(v)) if v.segments.is_empty() => (p, v),
                (Expr::Path(v), Expr::Path(p)) if v.segments.is_empty() => (p, v),
                _ => return,
            };
            if path.var != root.var || !other_vars.contains_key(&var.var) {
                return;
            }
            if classify_path(catalog, &root.class, &path.segments) == PathShape::EndsAtReference {
                out.insert(var.var.clone(), path.segments.clone());
            }
        }
        _ => {}
    }
}

/// Convert the WHERE expression into a Boolean tree over [`PredSpec`].
fn to_bool_expr(
    catalog: &Catalog,
    e: &Expr,
    root: &FromItem,
    rewritten: &HashMap<String, Vec<String>>,
) -> Result<BoolExpr<PredSpec>> {
    Ok(match e {
        Expr::And(parts) => BoolExpr::And(
            parts
                .iter()
                .map(|p| to_bool_expr(catalog, p, root, rewritten))
                .collect::<Result<_>>()?,
        ),
        Expr::Or(parts) => BoolExpr::Or(
            parts
                .iter()
                .map(|p| to_bool_expr(catalog, p, root, rewritten))
                .collect::<Result<_>>()?,
        ),
        Expr::Not(inner) => BoolExpr::Not(Box::new(to_bool_expr(catalog, inner, root, rewritten)?)),
        Expr::Between { expr, lo, hi } => {
            // `x BETWEEN a AND b` ⇒ `x >= a AND x <= b`.
            let ge = Expr::Compare {
                op: CmpOp::Ge,
                left: expr.clone(),
                right: lo.clone(),
            };
            let le = Expr::Compare {
                op: CmpOp::Le,
                left: expr.clone(),
                right: hi.clone(),
            };
            BoolExpr::And(vec![
                to_bool_expr(catalog, &ge, root, rewritten)?,
                to_bool_expr(catalog, &le, root, rewritten)?,
            ])
        }
        other => BoolExpr::Leaf(classify_leaf(catalog, other, root, rewritten)),
    })
}

fn classify_leaf(
    catalog: &Catalog,
    e: &Expr,
    root: &FromItem,
    rewritten: &HashMap<String, Vec<String>>,
) -> PredSpec {
    if let Expr::Compare { op, left, right } = e {
        // Normalize constant-on-the-left: `c θ path` ⇒ `path θ' c`.
        let (path_side, lit_side, op) = match (&**left, &**right) {
            (Expr::Path(p), Expr::Literal(l)) => (Some(p), Some(l), *op),
            (Expr::Literal(l), Expr::Path(p)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                (Some(p), Some(l), flipped)
            }
            _ => (None, None, *op),
        };
        if let (Some(p), Some(l)) = (path_side, lit_side) {
            if let Some(constant) = lit_to_const(l) {
                // Resolve the path to root-var coordinates.
                let (eff_var, mut segs) = if p.var == root.var {
                    (root.var.clone(), p.segments.clone())
                } else if let Some(prefix) = rewritten.get(&p.var) {
                    let mut s = prefix.clone();
                    s.extend(p.segments.iter().cloned());
                    (root.var.clone(), s)
                } else {
                    (p.var.clone(), p.segments.clone())
                };
                if eff_var == root.var && !segs.is_empty() {
                    match classify_path(catalog, &root.class, &segs) {
                        PathShape::Immediate => {
                            return PredSpec::Immediate {
                                attribute: segs.remove(0),
                                theta: op.to_theta(),
                                constant,
                            };
                        }
                        PathShape::PathToAtomic => {
                            // Preserve the user's variable name for the
                            // terminal class when the path came from an
                            // explicit join rewrite.
                            let terminal_var = rewritten
                                .iter()
                                .find(|(_, prefix)| {
                                    segs.len() == prefix.len() + 1 && segs.starts_with(prefix)
                                })
                                .map(|(v, _)| v.clone());
                            return PredSpec::Path {
                                path: segs,
                                theta: op.to_theta(),
                                constant,
                                terminal_var,
                            };
                        }
                        _ => {}
                    }
                }
            }
        }
        // An explicit join `path = var` that was rewritten: it is absorbed
        // into the rewritten paths, but must still hold as a predicate when
        // the executor falls back; emit it as Other with the original text.
        if let (Expr::Path(p), Expr::Path(v)) = (&**left, &**right) {
            if v.segments.is_empty() && rewritten.contains_key(&v.var) && p.var == root.var {
                return PredSpec::Other {
                    text: format!("__join__ {}", e.render()),
                };
            }
        }
    }
    PredSpec::Other { text: e.render() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mood_catalog::ClassBuilder;
    use mood_datamodel::TypeDescriptor;
    use mood_storage::StorageManager;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("VehicleEngine")
                .attribute("size", TypeDescriptor::integer())
                .attribute("cylinders", TypeDescriptor::integer()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("VehicleDriveTrain")
                .attribute("engine", TypeDescriptor::reference("VehicleEngine"))
                .attribute("transmission", TypeDescriptor::string()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("Company").attribute("name", TypeDescriptor::string()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("id", TypeDescriptor::integer())
                .attribute("weight", TypeDescriptor::integer())
                .attribute("drivetrain", TypeDescriptor::reference("VehicleDriveTrain"))
                .attribute("company", TypeDescriptor::reference("Company")),
        )
        .unwrap();
        cat.define_class(ClassBuilder::class("Automobile").inherits("Vehicle"))
            .unwrap();
        cat.define_class(ClassBuilder::class("JapaneseAuto").inherits("Automobile"))
            .unwrap();
        cat
    }

    fn lower_sql(cat: &Catalog, sql: &str) -> Lowered {
        let crate::ast::Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        lower(cat, &s).unwrap()
    }

    #[test]
    fn immediate_and_path_classification() {
        let cat = catalog();
        let l = lower_sql(
            &cat,
            "SELECT v FROM Vehicle v WHERE v.weight > 1000 AND \
             v.drivetrain.engine.cylinders = 2",
        );
        let term = &l.spec.terms[0];
        assert_eq!(term.len(), 2);
        assert!(matches!(
            &term[0],
            PredSpec::Immediate { attribute, .. } if attribute == "weight"
        ));
        assert!(matches!(
            &term[1],
            PredSpec::Path { path, .. } if path == &vec!["drivetrain".to_string(), "engine".into(), "cylinders".into()]
        ));
    }

    #[test]
    fn section_3_1_query_rewrites_var_join() {
        let cat = catalog();
        let l = lower_sql(
            &cat,
            "SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v \
             WHERE c.drivetrain.transmission = 'AUTOMATIC' AND \
             c.drivetrain.engine = v AND v.cylinders > 4",
        );
        assert_eq!(l.root.class, "Automobile");
        assert!(l.root.every);
        assert_eq!(l.root.minus, vec!["JapaneseAuto"]);
        // v was rewritten into the c.drivetrain.engine path.
        assert_eq!(
            l.rewritten_vars.get("v"),
            Some(&vec!["drivetrain".to_string(), "engine".to_string()])
        );
        assert!(l.unabsorbed.is_empty());
        let term = &l.spec.terms[0];
        // transmission (path), the join marker (other), cylinders (path
        // with terminal_var preserved).
        let cyl = term
            .iter()
            .find_map(|p| match p {
                PredSpec::Path {
                    path, terminal_var, ..
                } if path.last().map(String::as_str) == Some("cylinders") => {
                    Some(terminal_var.clone())
                }
                _ => None,
            })
            .expect("cylinders became a path predicate");
        assert_eq!(cyl, Some("v".to_string()));
    }

    #[test]
    fn between_expands_to_two_predicates() {
        let cat = catalog();
        let l = lower_sql(
            &cat,
            "SELECT v FROM Vehicle v WHERE v.weight BETWEEN 500 AND 900",
        );
        let term = &l.spec.terms[0];
        assert_eq!(term.len(), 2);
        assert!(matches!(
            &term[0],
            PredSpec::Immediate {
                theta: mood_cost::Theta::Ge,
                ..
            }
        ));
        assert!(matches!(
            &term[1],
            PredSpec::Immediate {
                theta: mood_cost::Theta::Le,
                ..
            }
        ));
    }

    #[test]
    fn or_produces_multiple_terms() {
        let cat = catalog();
        let l = lower_sql(
            &cat,
            "SELECT v FROM Vehicle v WHERE v.weight = 1 OR v.weight = 2",
        );
        assert_eq!(l.spec.terms.len(), 2);
    }

    #[test]
    fn not_pushes_into_theta() {
        let cat = catalog();
        let l = lower_sql(&cat, "SELECT v FROM Vehicle v WHERE NOT v.weight = 5");
        assert!(matches!(
            &l.spec.terms[0][0],
            PredSpec::Immediate {
                theta: mood_cost::Theta::Ne,
                ..
            }
        ));
    }

    #[test]
    fn method_calls_become_other() {
        let cat = catalog();
        let l = lower_sql(&cat, "SELECT v FROM Vehicle v WHERE v.lbweight() > 2000");
        assert!(matches!(
            &l.spec.terms[0][0],
            PredSpec::Other { text } if text == "v.lbweight() > 2000"
        ));
    }

    #[test]
    fn constant_on_left_normalizes() {
        let cat = catalog();
        let l = lower_sql(&cat, "SELECT v FROM Vehicle v WHERE 1000 < v.weight");
        assert!(matches!(
            &l.spec.terms[0][0],
            PredSpec::Immediate {
                theta: mood_cost::Theta::Gt,
                ..
            }
        ));
    }

    #[test]
    fn unabsorbed_from_items_reported() {
        let cat = catalog();
        let l = lower_sql(
            &cat,
            "SELECT v FROM Vehicle v, Company c WHERE v.weight > 0",
        );
        assert_eq!(l.unabsorbed.len(), 1);
        assert_eq!(l.unabsorbed[0].var, "c");
    }
}
