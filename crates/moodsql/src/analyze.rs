//! `EXPLAIN ANALYZE` — instrumented execution with estimate-vs-actual
//! accounting.
//!
//! The executor shares node identities with the optimizer's estimator:
//! plan nodes are numbered pre-order over `[temp1, temp2, …, root]` (see
//! `Plan::subtree_size`), so estimate `id` N and the measured actuals for
//! node N describe the same operator.
//!
//! Accounting is *exact* for page counters. Each node window records the
//! **inclusive** global [`DiskMetrics`] delta (the node plus its subtree);
//! a node's **exclusive** delta is its inclusive delta minus its direct
//! children's inclusive deltas. Children windows nest disjointly inside
//! their parent's window — parallel workers only run inside one node's
//! window at a time — so the subtraction telescopes: the sum of every
//! node's exclusive delta equals the tree roots' inclusive deltas, and
//! adding the coordinator stage windows (PLAN, GROUP BY, …) reproduces the
//! query's total counter delta component by component.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use mood_optimizer::{NodeEstimate, Plan, PlanSet};
use mood_storage::{DiskMetrics, MetricsRegistry, MetricsSnapshot};

use crate::error::Result;
use crate::exec::QueryResult;

/// Measured actuals for one plan node.
#[derive(Debug, Default, Clone, Copy)]
pub struct NodeActual {
    /// Rows the node produced.
    pub rows: u64,
    /// Inclusive counter delta: the node *and* its subtree.
    pub inclusive: MetricsSnapshot,
    /// Wall-clock nanoseconds (inclusive).
    pub nanos: u64,
}

/// Per-node recording sink for one term's execution. Shared by reference
/// down the plan walk; a `Mutex` keeps `&Executor` usable from worker
/// threads (windows themselves are opened on the coordinating thread).
pub(crate) struct AnalyzeRec {
    pub(crate) metrics: DiskMetrics,
    nodes: Mutex<HashMap<usize, NodeActual>>,
}

impl AnalyzeRec {
    pub(crate) fn new(metrics: DiskMetrics) -> Self {
        AnalyzeRec {
            metrics,
            nodes: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn record(&self, nid: usize, rows: u64, inclusive: MetricsSnapshot, nanos: u64) {
        let mut nodes = self.nodes.lock().expect("analyze lock");
        let e = nodes.entry(nid).or_default();
        e.rows += rows;
        e.inclusive = e.inclusive.plus(&inclusive);
        e.nanos += nanos;
    }

    pub(crate) fn into_nodes(self) -> HashMap<usize, NodeActual> {
        self.nodes.into_inner().expect("analyze lock")
    }
}

/// Measured actuals for one coordinator stage (PLAN, FROM fallback,
/// WHERE:UNION, GROUP BY, HAVING, PROJECT, ORDER BY, DISTINCT).
#[derive(Debug, Clone)]
pub struct StageActual {
    pub name: String,
    pub rows: u64,
    pub delta: MetricsSnapshot,
    pub nanos: u64,
}

/// Stage recording sink: every statement-level phase outside the plan walk
/// runs inside one of these windows so the page accounting stays complete.
pub(crate) struct StageRec {
    metrics: DiskMetrics,
    stages: Mutex<Vec<StageActual>>,
}

impl StageRec {
    pub(crate) fn new(metrics: DiskMetrics) -> Self {
        StageRec {
            metrics,
            stages: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn window<T>(
        &self,
        name: &str,
        rows_of: impl FnOnce(&T) -> u64,
        f: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        let start = Instant::now();
        let before = self.metrics.snapshot();
        let out = f()?;
        self.stages.lock().expect("stage lock").push(StageActual {
            name: name.to_string(),
            rows: rows_of(&out),
            delta: self.metrics.snapshot().delta(&before),
            nanos: start.elapsed().as_nanos() as u64,
        });
        Ok(out)
    }

    pub(crate) fn into_stages(self) -> Vec<StageActual> {
        self.stages.into_inner().expect("stage lock")
    }
}

/// Run `f` inside a stage window when recording, or plain when not — lets
/// the ordinary `SELECT` path share the staged code verbatim.
pub(crate) fn staged<T>(
    stages: Option<&StageRec>,
    name: &str,
    rows_of: impl FnOnce(&T) -> u64,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    match stages {
        None => f(),
        Some(s) => s.window(name, rows_of, f),
    }
}

/// One plan node with its estimate and (when the executor materialized the
/// node itself) its measured actuals.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Nesting depth inside the node's tree (for rendering).
    pub depth: usize,
    /// The cost model's prediction.
    pub est: NodeEstimate,
    /// Measured actuals; `None` when the operator was fused into its parent
    /// (unmaterialized right sides of forward/hash joins — their pages land
    /// in the join's exclusive delta).
    pub actual: Option<NodeActual>,
    /// Exclusive counter delta: the node's own page work, children removed.
    pub exclusive: MetricsSnapshot,
}

/// One AND-term's plan with per-node reports (shared pre-order ids).
#[derive(Debug, Clone)]
pub struct TermReport {
    pub plan: PlanSet,
    pub nodes: Vec<NodeReport>,
}

impl TermReport {
    pub(crate) fn build(
        plan: PlanSet,
        est: Vec<NodeEstimate>,
        actuals: HashMap<usize, NodeActual>,
    ) -> TermReport {
        let ds = depths(&plan);
        let kids = children_ids(&plan);
        let nodes = est
            .into_iter()
            .map(|e| NodeReport {
                depth: ds[e.id],
                actual: actuals.get(&e.id).copied(),
                exclusive: exclusive_of(e.id, &kids, &actuals),
                est: e,
            })
            .collect();
        TermReport { plan, nodes }
    }

    /// Actual rows produced by the term's root node.
    pub fn root_actual_rows(&self) -> Option<u64> {
        let offset: usize = self.plan.temps.iter().map(|(_, p)| p.subtree_size()).sum();
        self.nodes
            .get(offset)
            .and_then(|n| n.actual.as_ref())
            .map(|a| a.rows)
    }

    fn render_into(&self, out: &mut String) {
        let mut idx = 0usize;
        for (name, p) in &self.plan.temps {
            out.push_str(&format!("{name} :\n"));
            let n = p.subtree_size();
            for node in &self.nodes[idx..idx + n] {
                node.render_into(out, 1);
            }
            idx += n;
        }
        for node in &self.nodes[idx..] {
            node.render_into(out, 0);
        }
    }
}

impl NodeReport {
    fn render_into(&self, out: &mut String, base: usize) {
        let pad = "  ".repeat(base + self.depth);
        out.push_str(&format!("{pad}{}\n", self.est.label));
        out.push_str(&format!("{pad}  est: {}", est_summary(&self.est)));
        match &self.actual {
            Some(a) => out.push_str(&format!(
                " | act: rows={} pages={} time={:.3}ms | rows-off={:.1}x\n",
                a.rows,
                pages(&self.exclusive),
                a.nanos as f64 / 1e6,
                misestimation(self.est.rows, a.rows),
            )),
            None => out.push_str(" | act: (fused into parent)\n"),
        }
    }
}

/// The full `EXPLAIN ANALYZE` result: the query's rows plus the per-term
/// node reports, the coordinator stages, and the query-wide counter delta.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    pub result: QueryResult,
    pub terms: Vec<TermReport>,
    pub stages: Vec<StageActual>,
    /// Counter delta over the whole statement.
    pub total: MetricsSnapshot,
    pub elapsed_nanos: u64,
    /// The plan came from the session plan cache (no bind/optimize ran).
    pub cached: bool,
    /// Catalog epoch the plan was built under.
    pub epoch: u64,
    /// Time spent in PLAN (bind + statistics + optimize + estimates);
    /// zero for a cached execution.
    pub compile_nanos: u64,
}

impl AnalyzeReport {
    /// Σ per-node exclusive deltas + Σ stage deltas. Equals [`total`] for
    /// the page/buffer counters — the accounting invariant the tests pin.
    ///
    /// [`total`]: AnalyzeReport::total
    pub fn accounted(&self) -> MetricsSnapshot {
        let mut acc = MetricsSnapshot::default();
        for t in &self.terms {
            for n in &t.nodes {
                acc = acc.plus(&n.exclusive);
            }
        }
        for s in &self.stages {
            acc = acc.plus(&s.delta);
        }
        acc
    }

    /// Human-readable plan tree with estimate-vs-actual per node.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, term) in self.terms.iter().enumerate() {
            if self.terms.len() > 1 {
                out.push_str(&format!("-- term {} of {}:\n", i + 1, self.terms.len()));
            }
            term.render_into(&mut out);
        }
        if self.terms.is_empty() {
            out.push_str("-- nested-loop fallback (no per-operator plan)\n");
        }
        // Compile-vs-execute split. `-- plan: ` has its own prefix: `--   `
        // belongs to PathSelInfo/stage rows and `-- * ` to estimate rows,
        // and the conformance tests count lines by those prefixes.
        let execute_nanos = self.elapsed_nanos.saturating_sub(self.compile_nanos);
        if self.cached {
            out.push_str(&format!(
                "-- plan: cached (epoch {}), compile 0.000ms (plan reused), execute {:.3}ms\n",
                self.epoch,
                execute_nanos as f64 / 1e6
            ));
        } else {
            out.push_str(&format!(
                "-- plan: fresh (epoch {}), compile {:.3}ms, execute {:.3}ms\n",
                self.epoch,
                self.compile_nanos as f64 / 1e6,
                execute_nanos as f64 / 1e6
            ));
        }
        out.push_str("-- stages:\n");
        for s in &self.stages {
            out.push_str(&format!(
                "--   {}: rows={} pages={} time={:.3}ms\n",
                s.name,
                s.rows,
                pages(&s.delta),
                s.nanos as f64 / 1e6
            ));
        }
        out.push_str(&format!(
            "-- total: rows={} pages={} (seq={} rnd={} idx={} w={}) time={:.3}ms\n",
            self.result.len(),
            pages(&self.total),
            self.total.seq_pages,
            self.total.rnd_pages,
            self.total.idx_pages,
            self.total.writes,
            self.elapsed_nanos as f64 / 1e6
        ));
        out
    }
}

/// Total page work of a counter delta (reads of all kinds plus writes).
pub(crate) fn pages(s: &MetricsSnapshot) -> u64 {
    s.total_reads() + s.writes
}

/// Symmetric misestimation factor: `max(est/act, act/est)`, both floored
/// at one row so empty results stay finite. 1.0 = perfect estimate.
pub fn misestimation(est_rows: f64, actual_rows: u64) -> f64 {
    let e = est_rows.max(1.0);
    let a = (actual_rows as f64).max(1.0);
    (e / a).max(a / e)
}

/// Short operator kind for spans and registry totals.
pub(crate) fn op_kind(plan: &Plan) -> String {
    match plan {
        Plan::Bind { .. } => "BIND".into(),
        Plan::Temp { .. } => "TEMP".into(),
        Plan::Select { .. } => "SELECT".into(),
        Plan::IndSel { .. } => "INDSEL".into(),
        Plan::Join { method, .. } => format!("JOIN({})", method.plan_name()),
        Plan::Project { .. } => "PROJECT".into(),
        Plan::Sort { .. } => "SORT".into(),
        Plan::Partition { .. } => "PARTITION".into(),
        Plan::Union { .. } => "UNION".into(),
    }
}

/// Fold one term's measured nodes into the engine-wide operator totals.
pub(crate) fn record_operator_totals(
    registry: &MetricsRegistry,
    set: &PlanSet,
    actuals: &HashMap<usize, NodeActual>,
) {
    let kinds = node_kinds(set);
    let kids = children_ids(set);
    for (id, kind) in kinds.iter().enumerate() {
        if let Some(a) = actuals.get(&id) {
            let ex = exclusive_of(id, &kids, actuals);
            registry.record_operator(kind, a.rows, pages(&ex), a.nanos);
        }
    }
}

/// Per-node depth within its tree, in the shared pre-order id order.
pub(crate) fn depths(set: &PlanSet) -> Vec<usize> {
    fn walk(p: &Plan, d: usize, out: &mut Vec<usize>) {
        out.push(d);
        for c in p.children() {
            walk(c, d + 1, out);
        }
    }
    let mut out = Vec::new();
    for (_, p) in &set.temps {
        walk(p, 0, &mut out);
    }
    walk(&set.root, 0, &mut out);
    out
}

/// Direct-children ids per node, in the shared pre-order id order.
pub(crate) fn children_ids(set: &PlanSet) -> Vec<Vec<usize>> {
    fn walk(p: &Plan, id: usize, out: &mut Vec<Vec<usize>>) {
        let mut kid = id + 1;
        let mut mine = Vec::new();
        for c in p.children() {
            mine.push(kid);
            walk(c, kid, out);
            kid += c.subtree_size();
        }
        out[id] = mine;
    }
    let total: usize = set
        .temps
        .iter()
        .map(|(_, p)| p.subtree_size())
        .sum::<usize>()
        + set.root.subtree_size();
    let mut out = vec![Vec::new(); total];
    let mut offset = 0usize;
    for (_, p) in &set.temps {
        walk(p, offset, &mut out);
        offset += p.subtree_size();
    }
    walk(&set.root, offset, &mut out);
    out
}

fn node_kinds(set: &PlanSet) -> Vec<String> {
    fn walk(p: &Plan, out: &mut Vec<String>) {
        out.push(op_kind(p));
        for c in p.children() {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    for (_, p) in &set.temps {
        walk(p, &mut out);
    }
    walk(&set.root, &mut out);
    out
}

fn exclusive_of(
    id: usize,
    kids: &[Vec<usize>],
    actuals: &HashMap<usize, NodeActual>,
) -> MetricsSnapshot {
    let Some(a) = actuals.get(&id) else {
        return MetricsSnapshot::default();
    };
    let mut ex = a.inclusive;
    for k in &kids[id] {
        if let Some(c) = actuals.get(k) {
            ex = ex.delta(&c.inclusive);
        }
    }
    ex
}

/// Estimate half of a node line, shared by `EXPLAIN` (est-only) and
/// `EXPLAIN ANALYZE`.
pub(crate) fn est_summary(e: &NodeEstimate) -> String {
    let mut s = format!("rows={:.0}", e.rows);
    if let Some(sel) = e.selectivity {
        s.push_str(&format!(" sel={sel:.3e}"));
    }
    s.push_str(&format!(" pages={:.1}", e.pages));
    s
}

/// Per-node estimate block appended to `EXPLAIN` output (comment style, so
/// the paper-notation plan text stays byte-comparable).
pub(crate) fn render_estimates(set: &PlanSet, est: &[NodeEstimate]) -> String {
    let ds = depths(set);
    // `-- * ` rather than `--   `: the PathSelInfo dictionary owns the
    // latter prefix and conformance tests count its rows by it.
    let mut out = String::from("-- Node estimates (rows, selectivity, pages):\n");
    for e in est {
        out.push_str(&format!(
            "-- * {}{}: {}\n",
            "  ".repeat(ds[e.id]),
            e.label,
            est_summary(e)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_cost::JoinMethod;

    fn sample_set() -> PlanSet {
        // T1 : JOIN(BIND(A, a), SELECT(BIND(B, b), p), FT, cond); root uses T1.
        PlanSet {
            temps: vec![(
                "T1".to_string(),
                Plan::join(
                    Plan::bind("A", "a"),
                    Plan::select(Plan::bind("B", "b"), "b.x = 1"),
                    JoinMethod::ForwardTraversal,
                    "a.r = b.self",
                ),
            )],
            root: Plan::select(Plan::temp("T1"), "a.y = 2"),
            estimated_cost: 0.0,
        }
    }

    #[test]
    fn children_ids_follow_the_preorder_scheme() {
        let set = sample_set();
        let kids = children_ids(&set);
        // T1 tree: 0=JOIN, 1=BIND(A), 2=SELECT, 3=BIND(B); root: 4=SELECT, 5=T1.
        assert_eq!(kids[0], vec![1, 2]);
        assert_eq!(kids[2], vec![3]);
        assert_eq!(kids[4], vec![5]);
        assert!(kids[1].is_empty() && kids[3].is_empty() && kids[5].is_empty());
    }

    #[test]
    fn exclusive_subtracts_direct_children_only() {
        let set = sample_set();
        let kids = children_ids(&set);
        let mut actuals = HashMap::new();
        let snap = |rnd: u64| MetricsSnapshot {
            rnd_pages: rnd,
            ..Default::default()
        };
        actuals.insert(
            0,
            NodeActual {
                rows: 10,
                inclusive: snap(100),
                nanos: 0,
            },
        );
        actuals.insert(
            1,
            NodeActual {
                rows: 5,
                inclusive: snap(30),
                nanos: 0,
            },
        );
        // Node 2 (SELECT over BIND(B)) was fused — no record; its pages stay
        // in the join's exclusive.
        let ex = exclusive_of(0, &kids, &actuals);
        assert_eq!(ex.rnd_pages, 70);
        assert_eq!(exclusive_of(2, &kids, &actuals), MetricsSnapshot::default());
    }

    #[test]
    fn misestimation_is_symmetric_and_floored() {
        assert!((misestimation(100.0, 10) - 10.0).abs() < 1e-12);
        assert!((misestimation(10.0, 100) - 10.0).abs() < 1e-12);
        assert!((misestimation(0.0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn op_kinds_name_join_methods() {
        let set = sample_set();
        let kinds = node_kinds(&set);
        assert_eq!(
            kinds,
            vec!["JOIN(FORWARD_TRAVERSAL)", "BIND", "SELECT", "BIND", "SELECT", "TEMP"]
        );
    }
}
