//! Vendored stand-in for the `parking_lot` crate, implemented on
//! `std::sync` so the workspace builds offline (the container has no
//! registry access). Only the API surface this repository uses is
//! provided: non-poisoning `Mutex`, `RwLock`, and `Condvar` with
//! `wait`/`wait_until`/`notify_all`.
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): the
//! real parking_lot has no poisoning, and callers here rely on that.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now());
        assert!(res.timed_out());
    }
}
