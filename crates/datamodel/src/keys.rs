//! Order-preserving key encoding for B+-tree indexes.
//!
//! The index layer compares keys as raw bytes; these encoders guarantee
//! `encode(a) < encode(b) ⇔ a < b` under [`crate::value::Value::compare`]
//! for each atomic type, and numerics of different widths encode into a
//! common form so mixed Integer/LongInteger/Float keys still order
//! correctly.

use crate::value::Value;

/// Key-encoding failures: only atomic values can be index keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAtomic;

impl std::fmt::Display for NotAtomic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "only atomic values can be encoded as index keys")
    }
}

impl std::error::Error for NotAtomic {}

/// Encode an `f64` preserving IEEE total order (-inf < ... < +inf; NaN
/// sorts above +inf).
fn encode_f64(x: f64) -> [u8; 8] {
    let bits = x.to_bits();
    let flipped = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    };
    flipped.to_be_bytes()
}

/// Encode an atomic value as an order-preserving byte key.
///
/// Layout: 1 type-class byte, then the payload. Type classes order
/// NULL < numeric < string < char < boolean < ref, so mixed-type keys in a
/// diagnostic index remain totally ordered. All numerics share the numeric
/// class via the `f64` total-order encoding (the paper's run-time coercion
/// means a predicate `x > 3` applies equally to Integer and Float
/// attributes). Precision note: LongIntegers beyond 2^53 collapse to their
/// nearest double — acceptable for index keys because the heap record holds
/// the exact value and equality is re-checked on fetch.
pub fn encode_key(v: &Value) -> Result<Vec<u8>, NotAtomic> {
    let mut out = Vec::with_capacity(10);
    match v {
        Value::Null => out.push(0),
        Value::Integer(i) => {
            out.push(1);
            out.extend_from_slice(&encode_f64(*i as f64));
        }
        Value::LongInteger(i) => {
            out.push(1);
            out.extend_from_slice(&encode_f64(*i as f64));
        }
        Value::Float(x) => {
            out.push(1);
            out.extend_from_slice(&encode_f64(*x));
        }
        Value::String(s) => {
            out.push(2);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Char(c) => {
            out.push(3);
            out.extend_from_slice(&(*c as u32).to_be_bytes());
        }
        Value::Boolean(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        Value::Ref(oid) => {
            // OIDs are valid keys for binary join indexes (§6.3): encode
            // components big-endian so byte order equals Ord on Oid.
            out.push(5);
            out.extend_from_slice(&oid.file.0.to_be_bytes());
            out.extend_from_slice(&oid.page.0.to_be_bytes());
            out.extend_from_slice(&oid.slot.0.to_be_bytes());
            out.extend_from_slice(&oid.unique.to_be_bytes());
        }
        Value::Tuple(_) | Value::Set(_) | Value::List(_) => return Err(NotAtomic),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_storage::{FileId, Oid, PageId, SlotId};
    use std::cmp::Ordering;

    fn key(v: &Value) -> Vec<u8> {
        encode_key(v).unwrap()
    }

    #[test]
    fn integer_order_preserved() {
        let vals = [-1000, -1, 0, 1, 5, 1000, i32::MAX, i32::MIN];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    key(&Value::Integer(a)).cmp(&key(&Value::Integer(b))),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn float_order_preserved_including_negatives() {
        let vals = [-1e300, -1.5, -0.0, 0.0, 1e-10, 2.5, 1e300];
        for &a in &vals {
            for &b in &vals {
                let expect = a.partial_cmp(&b).unwrap();
                let got = key(&Value::Float(a)).cmp(&key(&Value::Float(b)));
                // -0.0 and 0.0 encode differently but compare Equal; accept
                // either order for that single pair.
                if a == b && a == 0.0 {
                    continue;
                }
                assert_eq!(got, expect, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn mixed_numerics_share_order() {
        assert_eq!(
            key(&Value::Integer(2)).cmp(&key(&Value::Float(2.5))),
            Ordering::Less
        );
        assert_eq!(
            key(&Value::LongInteger(3)).cmp(&key(&Value::Float(3.0))),
            Ordering::Equal
        );
    }

    #[test]
    fn string_order_preserved() {
        assert!(key(&Value::string("BMW")) < key(&Value::string("Toyota")));
        assert!(key(&Value::string("a")) < key(&Value::string("ab")));
    }

    #[test]
    fn null_sorts_lowest() {
        assert!(key(&Value::Null) < key(&Value::Integer(i32::MIN)));
        assert!(key(&Value::Null) < key(&Value::string("")));
    }

    #[test]
    fn oid_keys_match_oid_ordering() {
        let a = Oid::new(FileId(1), PageId(2), SlotId(3), 1);
        let b = Oid::new(FileId(1), PageId(10), SlotId(0), 1);
        assert_eq!(key(&Value::Ref(a)).cmp(&key(&Value::Ref(b))), a.cmp(&b));
    }

    #[test]
    fn collections_are_rejected() {
        assert_eq!(encode_key(&Value::Set(vec![])), Err(NotAtomic));
        assert_eq!(encode_key(&Value::List(vec![])), Err(NotAtomic));
        assert_eq!(encode_key(&Value::Tuple(vec![])), Err(NotAtomic));
    }
}
