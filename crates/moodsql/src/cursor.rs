//! The cursor mechanism of Section 9.4.
//!
//! "A cursor like mechanism which exists commonly in RDBMSs is designed for
//! displaying objects. … It is also possible to sequence back and forth
//! through the returned objects using the cursor functions provided by the
//! kernel."

use mood_datamodel::Value;

use crate::exec::QueryResult;

/// A bidirectional cursor over a query result.
pub struct Cursor {
    result: QueryResult,
    /// Position: `None` before the first row.
    pos: Option<usize>,
}

impl Cursor {
    pub fn new(result: QueryResult) -> Cursor {
        Cursor { result, pos: None }
    }

    pub fn columns(&self) -> &[String] {
        &self.result.columns
    }

    pub fn len(&self) -> usize {
        self.result.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.result.rows.is_empty()
    }

    /// Advance; returns the new current row or `None` past the end.
    /// (Deliberately named like the paper's cursor function; the cursor is
    /// bidirectional so it is not an `Iterator`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[Value]> {
        let next = match self.pos {
            None => 0,
            Some(p) => p + 1,
        };
        if next >= self.result.rows.len() {
            self.pos = Some(self.result.rows.len());
            return None;
        }
        self.pos = Some(next);
        Some(&self.result.rows[next])
    }

    /// Step backward; returns the new current row or `None` before the
    /// start.
    pub fn prev(&mut self) -> Option<&[Value]> {
        match self.pos {
            None | Some(0) => {
                self.pos = None;
                None
            }
            Some(p) => {
                let p = p.min(self.result.rows.len()) - 1;
                if p == 0 && self.result.rows.is_empty() {
                    self.pos = None;
                    return None;
                }
                self.pos = Some(p);
                self.result.rows.get(p).map(|r| r.as_slice())
            }
        }
    }

    /// The current row, if positioned on one.
    pub fn current(&self) -> Option<&[Value]> {
        self.pos
            .and_then(|p| self.result.rows.get(p))
            .map(|r| r.as_slice())
    }

    /// Back to before-first.
    pub fn rewind(&mut self) {
        self.pos = None;
    }

    /// Consume into the underlying result.
    pub fn into_result(self) -> QueryResult {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        QueryResult {
            columns: vec!["n".into()],
            rows: vec![
                vec![Value::Integer(1)],
                vec![Value::Integer(2)],
                vec![Value::Integer(3)],
            ],
        }
    }

    #[test]
    fn forward_iteration() {
        let mut c = Cursor::new(result());
        assert_eq!(c.current(), None, "before first");
        assert_eq!(c.next().unwrap()[0], Value::Integer(1));
        assert_eq!(c.next().unwrap()[0], Value::Integer(2));
        assert_eq!(c.next().unwrap()[0], Value::Integer(3));
        assert!(c.next().is_none(), "past the end");
        assert!(c.next().is_none(), "stays past the end");
    }

    #[test]
    fn back_and_forth_like_section_9_4() {
        let mut c = Cursor::new(result());
        c.next();
        c.next(); // on row 2
        assert_eq!(c.current().unwrap()[0], Value::Integer(2));
        assert_eq!(c.prev().unwrap()[0], Value::Integer(1));
        assert_eq!(c.next().unwrap()[0], Value::Integer(2));
        // Walk off the front.
        c.prev();
        assert!(c.prev().is_none());
        assert_eq!(c.current(), None);
    }

    #[test]
    fn prev_from_past_end_lands_on_last() {
        let mut c = Cursor::new(result());
        while c.next().is_some() {}
        assert_eq!(c.prev().unwrap()[0], Value::Integer(3));
    }

    #[test]
    fn rewind_resets() {
        let mut c = Cursor::new(result());
        c.next();
        c.rewind();
        assert_eq!(c.current(), None);
        assert_eq!(c.next().unwrap()[0], Value::Integer(1));
    }

    #[test]
    fn empty_result() {
        let mut c = Cursor::new(QueryResult {
            columns: vec![],
            rows: vec![],
        });
        assert!(c.is_empty());
        assert!(c.next().is_none());
        assert!(c.prev().is_none());
    }
}
