//! The paper's worked examples, end to end, with the Table 13–15
//! statistics injected — the reproduction's headline conformance tests:
//!
//! * Table 16 (PathSelInfo for Example 8.1) — selectivities, costs, ranks;
//! * Example 8.1's access plan, temp + final, in the paper's notation;
//! * Example 8.2's access plan (Table 17's decision);
//! * the Appendix lemma (F/(1−s) optimality) at the Table 16 point.

use mood_core::optimizer::{objective, optimal_order_exhaustive, order_paths, PathCost};
use mood_core::{DatabaseStats, Mood, OptimizerConfig};

/// A database with the paper's schema (tiny population) but the *paper's*
/// statistics (Tables 13–15) injected, so optimization decisions replay the
/// published ones exactly.
fn paper_db() -> Mood {
    let db = Mood::in_memory();
    db.set_optimizer_config(OptimizerConfig::paper());
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Employee TUPLE (ssno Integer, name String(32), age Integer)",
        "CREATE CLASS Company TUPLE (name String(32), location String(32), \
         president REFERENCE (Employee))",
        // The example query's `v.company` path: the paper's prose uses
        // `company` for the manufacturer reference; the schema carries both
        // so either spelling works.
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), manufacturer REFERENCE (Company), \
         company REFERENCE (Company))",
        "CREATE CLASS Automobile INHERITS FROM Vehicle",
        "CREATE CLASS JapaneseAuto INHERITS FROM Automobile",
    ] {
        db.execute(ddl).unwrap();
    }
    db.catalog().set_stats(DatabaseStats::paper_example());
    db
}

#[test]
fn table_16_values() {
    let db = paper_db();
    let plan = db
        .explain(
            "SELECT v FROM Vehicle v WHERE v.company.name = 'BMW' \
             AND v.drivetrain.engine.cylinders = 2",
        )
        .unwrap();
    // The PathSelInfo dictionary is printed at the head of the plan.
    // P2 first (lower rank), P1 second.
    let lines: Vec<&str> = plan.lines().filter(|l| l.starts_with("--   ")).collect();
    assert_eq!(lines.len(), 2, "{plan}");
    assert!(lines[0].contains("v.company.name = 'BMW'"), "{plan}");
    assert!(
        lines[1].contains("v.drivetrain.engine.cylinders = 2"),
        "{plan}"
    );

    // P1 row: selectivity 6.25e-2 exactly as Table 16.
    assert!(lines[1].contains("6.250e-2"), "{}", lines[1]);
    // P1 forward cost within 1% of 771.825 and rank within 1% of 823.280.
    let f1: f64 = lines[1].split('|').nth(2).unwrap().trim().parse().unwrap();
    let rank1: f64 = lines[1].split('|').nth(3).unwrap().trim().parse().unwrap();
    assert!((f1 - 771.825).abs() / 771.825 < 0.01, "F1 = {f1}");
    assert!((rank1 - 823.280).abs() / 823.280 < 0.01, "rank1 = {rank1}");

    // P2: the formula value 5.0e-6 (the paper prints 5.00e-5 — its own
    // formula drops the hitprb factor there; see EXPERIMENTS.md), and the
    // calibrated forward cost exactly 520.825.
    assert!(lines[0].contains("5.000e-6"), "{}", lines[0]);
    let f2: f64 = lines[0].split('|').nth(2).unwrap().trim().parse().unwrap();
    assert!((f2 - 520.825).abs() < 1e-3, "F2 = {f2}");
}

#[test]
fn example_8_1_full_plan() {
    let db = paper_db();
    let plan = db
        .explain(
            "SELECT v FROM Vehicle v WHERE v.company.name = 'BMW' \
             AND v.drivetrain.engine.cylinders = 2",
        )
        .unwrap();
    // T1 : JOIN(BIND(Vehicle, v), SELECT(BIND(Company, c), c.name = 'BMW'),
    //           HASH_PARTITION, v.company = c.self)
    assert!(plan.contains("T1 : JOIN("), "{plan}");
    assert!(plan.contains("BIND(Vehicle, v)"), "{plan}");
    assert!(
        plan.contains("SELECT(BIND(Company, c), c.name = 'BMW')"),
        "{plan}"
    );
    assert!(
        plan.contains("HASH_PARTITION, v.company = c.self"),
        "{plan}"
    );
    // JOIN(JOIN(T1, BIND(VehicleDriveTrain, d), FORWARD_TRAVERSAL,
    //   v.drivetrain = d.self), SELECT(BIND(VehicleEngine, e),
    //   e.cylinders = 2), FORWARD_TRAVERSAL, d.engine = e.self)
    assert!(plan.contains("BIND(VehicleDriveTrain, d)"), "{plan}");
    assert!(
        plan.contains("FORWARD_TRAVERSAL, v.drivetrain = d.self"),
        "{plan}"
    );
    assert!(
        plan.contains("SELECT(BIND(VehicleEngine, e), e.cylinders = 2)"),
        "{plan}"
    );
    assert!(
        plan.contains("FORWARD_TRAVERSAL, d.engine = e.self"),
        "{plan}"
    );
}

#[test]
fn example_8_2_full_plan() {
    let db = paper_db();
    let plan = db
        .explain("SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2")
        .unwrap();
    // The greedy (Algorithm 8.2) merges (d, e) first with HASH_PARTITION,
    // then joins Vehicle in, also HASH_PARTITION — the paper's T1/final
    // pair, rendered inline.
    assert!(plan.contains("BIND(VehicleDriveTrain, d)"), "{plan}");
    assert!(
        plan.contains("SELECT(BIND(VehicleEngine, e), e.cylinders = 2)"),
        "{plan}"
    );
    assert!(plan.contains("HASH_PARTITION, d.engine = e.self"), "{plan}");
    assert!(plan.contains("BIND(Vehicle, v)"), "{plan}");
    assert!(
        plan.contains("HASH_PARTITION, v.drivetrain = d.self"),
        "{plan}"
    );
    assert!(
        !plan.contains("FORWARD_TRAVERSAL"),
        "both joins hash: {plan}"
    );
}

#[test]
fn appendix_lemma_at_the_table_16_point() {
    // The printed Table 16 numbers themselves: check the F/(1−s) order is
    // the exhaustive optimum of the objective f.
    let p1 = PathCost {
        cost: 771.825,
        selectivity: 6.25e-2,
    };
    let p2 = PathCost {
        cost: 520.825,
        selectivity: 5.00e-5,
    };
    let paths = [p1, p2];
    let ranked = order_paths(&paths);
    assert_eq!(ranked, vec![1, 0], "P2 before P1");
    let (best_order, best) = optimal_order_exhaustive(&paths);
    assert_eq!(ranked, best_order);
    assert!((objective(&paths, &ranked) - best).abs() < 1e-12);
    // And the objective value: f = F2 + s2·F1 ≈ 520.864.
    let f = objective(&paths, &ranked);
    assert!((f - (520.825 + 5.00e-5 * 771.825)).abs() < 1e-9);
}

#[test]
fn executing_the_example_8_1_query_works_on_real_data() {
    // Inject paper stats for planning, but the tiny real population must
    // still produce correct answers through the paper-shaped plan.
    let db = paper_db();
    let catalog = db.catalog();
    use mood_core::Value;
    let bmw = catalog
        .new_object(
            "Company",
            Value::tuple(vec![("name", Value::string("BMW"))]),
        )
        .unwrap();
    let other = catalog
        .new_object(
            "Company",
            Value::tuple(vec![("name", Value::string("Skoda"))]),
        )
        .unwrap();
    let engine2 = catalog
        .new_object(
            "VehicleEngine",
            Value::tuple(vec![("cylinders", Value::Integer(2))]),
        )
        .unwrap();
    let engine6 = catalog
        .new_object(
            "VehicleEngine",
            Value::tuple(vec![("cylinders", Value::Integer(6))]),
        )
        .unwrap();
    let t2 = catalog
        .new_object(
            "VehicleDriveTrain",
            Value::tuple(vec![("engine", Value::Ref(engine2))]),
        )
        .unwrap();
    let t6 = catalog
        .new_object(
            "VehicleDriveTrain",
            Value::tuple(vec![("engine", Value::Ref(engine6))]),
        )
        .unwrap();
    for (id, train, company) in [(1, t2, bmw), (2, t2, other), (3, t6, bmw), (4, t6, other)] {
        catalog
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(id)),
                    ("drivetrain", Value::Ref(train)),
                    ("company", Value::Ref(company)),
                ]),
            )
            .unwrap();
    }
    let mut cur = db
        .query(
            "SELECT v.id FROM Vehicle v WHERE v.company.name = 'BMW' \
             AND v.drivetrain.engine.cylinders = 2",
        )
        .unwrap();
    assert_eq!(cur.len(), 1);
    assert_eq!(cur.next().unwrap()[0], Value::Integer(1));
}

#[test]
fn path_index_chosen_at_paper_scale() {
    // With a path index over drivetrain.engine.cylinders whose stats say
    // "3 levels, 40 leaves", one probe + 1250 fetches beats the 775-second
    // traversal — the optimizer must switch to PATH_INDEX.
    let db = paper_db();
    let mut stats = DatabaseStats::paper_example();
    stats.set_index(
        "Vehicle",
        "drivetrain.engine.cylinders",
        mood_core::storage::BTreeStats {
            levels: 3,
            leaves: 40,
            keysize: 9,
            unique: false,
            entries: 20_000,
            order: 100,
        },
    );
    db.catalog().set_stats(stats);
    let plan = db
        .explain("SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2")
        .unwrap();
    assert!(plan.contains("INDSEL(Vehicle, v, PATH_INDEX"), "{plan}");
    assert!(!plan.contains("JOIN("), "no traversal joins remain: {plan}");
}
