//! Schema browser and generic object presentation — the headless MoodView.
//!
//! Everything MoodView showed in widgets is rendered as text here: the
//! class designer card (Figure 9.2), the hierarchy browser (Figure 9.1c,
//! via [`crate::dag`]), and the generic object presentation (Figure 9.3) —
//! "MOOD objects constitute graphs connecting atoms and constructors.
//! MoodView has a generic display algorithm for displaying these object
//! graphs and walking through the referenced objects."

use mood_catalog::{Catalog, ClassKind};
use mood_datamodel::Value;
use mood_storage::Oid;

use crate::dag::{place, render_ascii, render_dot, Layout};

/// Compute the hierarchy layout for all classes in the catalog.
pub fn hierarchy_layout(catalog: &Catalog) -> Layout {
    let nodes = catalog.class_names();
    let mut edges = Vec::new();
    for name in &nodes {
        if let Ok(def) = catalog.class(name) {
            for sup in &def.superclasses {
                edges.push((sup.clone(), name.clone()));
            }
        }
    }
    place(&nodes, &edges)
}

/// The class-hierarchy browser, as ASCII.
pub fn render_hierarchy(catalog: &Catalog) -> String {
    render_ascii(&hierarchy_layout(catalog))
}

/// The class hierarchy as Graphviz DOT.
pub fn render_hierarchy_dot(catalog: &Catalog) -> String {
    render_dot(&hierarchy_layout(catalog), "MOOD schema")
}

/// The class-presentation card of Figure 9.2(b): name, type id, kind,
/// superclasses, subclasses, attributes (own + inherited), methods.
pub fn render_class_card(
    catalog: &Catalog,
    class: &str,
) -> Result<String, mood_catalog::CatalogError> {
    let def = catalog.class(class)?;
    let mut out = String::new();
    out.push_str("Class Presentation\n==================\n");
    out.push_str(&format!("Type Name : {}\n", def.name));
    out.push_str(&format!("Type Id   : {}\n", def.type_id));
    out.push_str(&format!(
        "Class Type: {}\n",
        match def.kind {
            ClassKind::Class => "User Class",
            ClassKind::Type => "User Type",
        }
    ));
    out.push_str(&format!(
        "Superclasses: {}\n",
        join_or_dash(&def.superclasses)
    ));
    out.push_str(&format!(
        "Subclasses  : {}\n",
        join_or_dash(&catalog.subclasses(class))
    ));
    out.push_str("Attributes:\n");
    let own: Vec<String> = def.attributes.iter().map(|a| a.name.clone()).collect();
    for attr in catalog.effective_attributes(class)? {
        let marker = if own.contains(&attr.name) { " " } else { "^" }; // ^ inherited
        out.push_str(&format!("  {marker} {:<16} {}\n", attr.name, attr.ty));
    }
    out.push_str("Methods:\n");
    let mut listed = std::collections::HashSet::new();
    for m in &def.methods {
        listed.insert(m.name.clone());
        out.push_str(&format!("    {m}\n"));
    }
    for sup in catalog.superclasses(class) {
        if let Ok(sdef) = catalog.class(&sup) {
            for m in &sdef.methods {
                if listed.insert(m.name.clone()) {
                    out.push_str(&format!("  ^ {m}   (from {sup})\n"));
                }
            }
        }
    }
    Ok(out)
}

fn join_or_dash(items: &[String]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.join(", ")
    }
}

/// Generic object presentation (Figure 9.3): walk the object graph from
/// `oid`, rendering name/type/value triplets, following references up to
/// `depth` with cycle detection.
pub fn render_object(catalog: &Catalog, oid: Oid, depth: usize) -> String {
    let mut out = String::new();
    let mut visiting = Vec::new();
    walk(catalog, oid, depth, 0, &mut out, &mut visiting);
    return out;

    fn walk(
        catalog: &Catalog,
        oid: Oid,
        depth: usize,
        indent: usize,
        out: &mut String,
        visiting: &mut Vec<Oid>,
    ) {
        let pad = "  ".repeat(indent);
        if visiting.contains(&oid) {
            out.push_str(&format!("{pad}@{oid} (cycle)\n"));
            return;
        }
        let Ok((class, value)) = catalog.get_object(oid) else {
            out.push_str(&format!("{pad}@{oid} (dangling)\n"));
            return;
        };
        out.push_str(&format!("{pad}{class} @{oid}\n"));
        visiting.push(oid);
        render_value(catalog, &value, depth, indent + 1, out, visiting);
        visiting.pop();
    }

    fn render_value(
        catalog: &Catalog,
        value: &Value,
        depth: usize,
        indent: usize,
        out: &mut String,
        visiting: &mut Vec<Oid>,
    ) {
        let pad = "  ".repeat(indent);
        match value {
            Value::Tuple(fields) => {
                for (name, v) in fields {
                    match v {
                        Value::Ref(target) => {
                            if depth > 0 {
                                out.push_str(&format!("{pad}{name}:\n"));
                                walk(catalog, *target, depth - 1, indent + 1, out, visiting);
                            } else {
                                out.push_str(&format!("{pad}{name}: @{target}\n"));
                            }
                        }
                        Value::Set(_) | Value::List(_) | Value::Tuple(_) => {
                            out.push_str(&format!("{pad}{name}:\n"));
                            render_value(catalog, v, depth, indent + 1, out, visiting);
                        }
                        atom => out.push_str(&format!("{pad}{name}: {atom}\n")),
                    }
                }
            }
            Value::Set(items) | Value::List(items) => {
                for (i, v) in items.iter().enumerate() {
                    match v {
                        Value::Ref(target) if depth > 0 => {
                            out.push_str(&format!("{pad}[{i}]:\n"));
                            walk(catalog, *target, depth - 1, indent + 1, out, visiting);
                        }
                        other => out.push_str(&format!("{pad}[{i}]: {other}\n")),
                    }
                }
            }
            atom => out.push_str(&format!("{pad}{atom}\n")),
        }
    }
}

/// The kernel's cursor buffer protocol (Section 9.4): "a pointer to a
/// buffer area each element of which specifies a name, a type and a value
/// of the object's attributes". MoodView synthesizes widgets from these.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeTriplet {
    pub name: String,
    pub type_name: String,
    pub value: Value,
}

/// Produce the name/type/value triplets for one object.
pub fn object_triplets(
    catalog: &Catalog,
    oid: Oid,
) -> Result<Vec<AttributeTriplet>, mood_catalog::CatalogError> {
    let (class, value) = catalog.get_object(oid)?;
    let attrs = catalog.effective_attributes(&class)?;
    let mut out = Vec::new();
    if let Value::Tuple(fields) = &value {
        for (name, v) in fields {
            let type_name = attrs
                .iter()
                .find(|a| &a.name == name)
                .map(|a| a.ty.to_string())
                .unwrap_or_else(|| "?".to_string());
            out.push(AttributeTriplet {
                name: name.clone(),
                type_name,
                value: v.clone(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_catalog::ClassBuilder;
    use mood_datamodel::TypeDescriptor;
    use mood_storage::StorageManager;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("VehicleEngine").attribute("cylinders", TypeDescriptor::integer()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("id", TypeDescriptor::integer())
                .attribute("engine", TypeDescriptor::reference("VehicleEngine"))
                .method(mood_catalog::MethodSig::new(
                    "lbweight",
                    TypeDescriptor::float(),
                    vec![],
                )),
        )
        .unwrap();
        cat.define_class(ClassBuilder::class("Automobile").inherits("Vehicle"))
            .unwrap();
        cat
    }

    #[test]
    fn hierarchy_renders_layers() {
        let cat = catalog();
        let s = render_hierarchy(&cat);
        assert!(s.contains("[Vehicle]"));
        assert!(s.contains("Vehicle --> Automobile"));
        let dot = render_hierarchy_dot(&cat);
        assert!(dot.contains("\"Vehicle\" -> \"Automobile\";"));
    }

    #[test]
    fn class_card_shows_inherited_members() {
        let cat = catalog();
        let card = render_class_card(&cat, "Automobile").unwrap();
        assert!(card.contains("Type Name : Automobile"), "{card}");
        assert!(card.contains("Superclasses: Vehicle"), "{card}");
        assert!(card.contains("^ id"), "inherited attribute marked: {card}");
        assert!(card.contains("lbweight"), "{card}");
        assert!(card.contains("(from Vehicle)"), "{card}");
    }

    #[test]
    fn object_graph_rendering_follows_refs_and_stops_at_depth() {
        let cat = catalog();
        let engine = cat
            .new_object(
                "VehicleEngine",
                Value::tuple(vec![("cylinders", Value::Integer(6))]),
            )
            .unwrap();
        let car = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(1)),
                    ("engine", Value::Ref(engine)),
                ]),
            )
            .unwrap();
        let deep = render_object(&cat, car, 2);
        assert!(deep.contains("Vehicle @"), "{deep}");
        assert!(deep.contains("cylinders: 6"), "{deep}");
        let shallow = render_object(&cat, car, 0);
        assert!(!shallow.contains("cylinders"), "{shallow}");
        assert!(shallow.contains("engine: @"), "{shallow}");
    }

    #[test]
    fn cycles_are_detected() {
        let cat = catalog();
        let sm = cat.storage().clone();
        let _ = sm;
        // Build a self-referential pair via set_stats-free raw updates.
        cat.define_class(
            ClassBuilder::class("Node").attribute("next", TypeDescriptor::reference("Node")),
        )
        .unwrap();
        let a = cat.new_object("Node", Value::tuple(vec![])).unwrap();
        let b = cat
            .new_object("Node", Value::tuple(vec![("next", Value::Ref(a))]))
            .unwrap();
        cat.update_object(a, Value::tuple(vec![("next", Value::Ref(b))]))
            .unwrap();
        let s = render_object(&cat, a, 10);
        assert!(s.contains("(cycle)"), "{s}");
    }

    #[test]
    fn triplets_expose_name_type_value() {
        let cat = catalog();
        let car = cat
            .new_object("Vehicle", Value::tuple(vec![("id", Value::Integer(9))]))
            .unwrap();
        let t = object_triplets(&cat, car).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].name, "id");
        assert_eq!(t[0].type_name, "Integer");
        assert_eq!(t[0].value, Value::Integer(9));
        assert_eq!(t[1].name, "engine");
        assert!(t[1].type_name.contains("REFERENCE"));
    }
}

/// The method-presentation card of Figure 9.2(a): name, return type,
/// parameters, applicable classes, and the body source when the method is
/// interpreted (the method editor reads it back from the Function Manager).
pub fn render_method_card(
    catalog: &Catalog,
    funcman: &mood_funcman::FunctionManager,
    class: &str,
    method: &str,
) -> Result<String, mood_catalog::CatalogError> {
    let (defining, sig) = catalog.resolve_method(class, method)?;
    let mut out = String::new();
    out.push_str("Method Presentation\n===================\n");
    out.push_str(&format!("Name        : {}\n", sig.name));
    out.push_str(&format!("Return Type : {}\n", sig.return_type));
    out.push_str("Parameters  :\n");
    if sig.params.is_empty() {
        out.push_str("  (none)\n");
    }
    for (n, t) in &sig.params {
        out.push_str(&format!("  {t} {n}\n"));
    }
    let mut applicable = vec![defining.clone()];
    applicable.extend(catalog.subclasses(&defining));
    out.push_str(&format!("Applicable Classes: {}\n", applicable.join(", ")));
    match funcman.method_source(&defining, method) {
        Some(src) => out.push_str(&format!("Body        : {src}\n")),
        None => out.push_str("Body        : (native / compiled)\n"),
    }
    Ok(out)
}

/// Update one attribute of an object through the browser — "Dynamic type
/// checking is performed by MoodView to ensure the correctness of updates"
/// (Section 9.3). The catalog's normalization rejects ill-typed values.
pub fn update_attribute(
    catalog: &Catalog,
    oid: Oid,
    attribute: &str,
    new_value: Value,
) -> Result<(), mood_catalog::CatalogError> {
    let (_, mut value) = catalog.get_object(oid)?;
    value.set_field(attribute, new_value);
    catalog.update_object(oid, value)
}

#[cfg(test)]
mod browser_edit_tests {
    use super::*;
    use mood_catalog::{ClassBuilder, MethodSig};
    use mood_datamodel::TypeDescriptor;
    use mood_funcman::FunctionManager;
    use mood_storage::StorageManager;
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, FunctionManager) {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("weight", TypeDescriptor::integer())
                .method(MethodSig::new("lbweight", TypeDescriptor::float(), vec![])),
        )
        .unwrap();
        cat.define_class(ClassBuilder::class("Automobile").inherits("Vehicle"))
            .unwrap();
        let fm = FunctionManager::new(cat.clone());
        fm.define_source(
            "Vehicle",
            MethodSig::new("lbweight", TypeDescriptor::float(), vec![]),
            "weight * 2.2075",
        )
        .unwrap();
        (cat, fm)
    }

    #[test]
    fn method_card_shows_signature_body_and_applicability() {
        let (cat, fm) = setup();
        // Resolved from the subclass, defined on the superclass.
        let card = render_method_card(&cat, &fm, "Automobile", "lbweight").unwrap();
        assert!(card.contains("Name        : lbweight"), "{card}");
        assert!(card.contains("Return Type : Float"), "{card}");
        assert!(
            card.contains("Applicable Classes: Vehicle, Automobile"),
            "{card}"
        );
        assert!(card.contains("weight * 2.2075"), "{card}");
        assert!(render_method_card(&cat, &fm, "Vehicle", "nope").is_err());
    }

    #[test]
    fn browser_update_typechecks() {
        let (cat, _) = setup();
        let oid = cat
            .new_object(
                "Vehicle",
                Value::tuple(vec![("weight", Value::Integer(100))]),
            )
            .unwrap();
        update_attribute(&cat, oid, "weight", Value::Integer(250)).unwrap();
        let (_, v) = cat.get_object(oid).unwrap();
        assert_eq!(v.field("weight"), Some(&Value::Integer(250)));
        // Ill-typed update rejected (the §9.3 dynamic type check).
        assert!(update_attribute(&cat, oid, "weight", Value::string("heavy")).is_err());
        // Unknown attribute rejected.
        assert!(update_attribute(&cat, oid, "bogus", Value::Integer(1)).is_err());
    }
}
