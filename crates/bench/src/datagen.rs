//! Synthetic database generators with controlled statistics.

use mood_core::{Mood, Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a two-class reference database `C --A--> D` for the
/// join-method experiments (X1).
#[derive(Debug, Clone, Copy)]
pub struct RefDbSpec {
    /// |C| — referencing objects.
    pub n_c: usize,
    /// |D| — referenced objects.
    pub n_d: usize,
    /// Padding bytes per object (controls objects/page, hence nbpages).
    pub pad_c: usize,
    pub pad_d: usize,
    /// Buffer-pool frames (small pools reproduce the worst-case model).
    pub pool_frames: usize,
    /// Create a binary join index on C.d?
    pub join_index: bool,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Default for RefDbSpec {
    fn default() -> Self {
        RefDbSpec {
            n_c: 2000,
            n_d: 500,
            pad_c: 120,
            pad_d: 200,
            pool_frames: 8,
            join_index: false,
            seed: 42,
        }
    }
}

/// Build the C→D database. Returns (db, C-oids, D-oids).
pub fn build_ref_db(spec: &RefDbSpec) -> (Mood, Vec<Oid>, Vec<Oid>) {
    let db = Mood::in_memory_with_pool(spec.pool_frames);
    db.execute("CREATE CLASS D TUPLE (id Integer, payload String)")
        .unwrap();
    db.execute("CREATE CLASS C TUPLE (id Integer, d REFERENCE (D), payload String)")
        .unwrap();
    let catalog = db.catalog();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut d_oids = Vec::with_capacity(spec.n_d);
    for i in 0..spec.n_d {
        d_oids.push(
            catalog
                .new_object(
                    "D",
                    Value::tuple(vec![
                        ("id", Value::Integer(i as i32)),
                        ("payload", Value::string("d".repeat(spec.pad_d))),
                    ]),
                )
                .unwrap(),
        );
    }
    if spec.join_index {
        db.execute("CREATE INDEX ON C(d)").unwrap();
    }
    let mut c_oids = Vec::with_capacity(spec.n_c);
    for i in 0..spec.n_c {
        let target = d_oids[rng.gen_range(0..d_oids.len())];
        c_oids.push(
            catalog
                .new_object(
                    "C",
                    Value::tuple(vec![
                        ("id", Value::Integer(i as i32)),
                        ("d", Value::Ref(target)),
                        ("payload", Value::string("c".repeat(spec.pad_c))),
                    ]),
                )
                .unwrap(),
        );
    }
    db.collect_stats().unwrap();
    (db, c_oids, d_oids)
}

/// Specification of a paper-shaped Vehicle database (X3/X4 and the
/// example-driven experiments at measurable scale).
#[derive(Debug, Clone, Copy)]
pub struct VehicleDbSpec {
    pub n_vehicles: usize,
    pub n_drivetrains: usize,
    pub n_engines: usize,
    pub n_companies: usize,
    /// Distinct cylinder values (the Table 14 `dist`).
    pub cylinder_values: i32,
    pub pool_frames: usize,
    pub seed: u64,
}

impl Default for VehicleDbSpec {
    fn default() -> Self {
        VehicleDbSpec {
            n_vehicles: 2000,
            n_drivetrains: 1000,
            n_engines: 1000,
            n_companies: 400,
            cylinder_values: 16,
            pool_frames: 32,
            seed: 7,
        }
    }
}

/// Build a scaled-down instance of the paper's Vehicle database
/// (Tables 13–15 shape: fan 1 everywhere, drivetrains shared 2:1 by
/// vehicles, one company per vehicle with 10% of companies referenced).
pub fn build_vehicle_db(spec: &VehicleDbSpec) -> Mood {
    let db = Mood::in_memory_with_pool(spec.pool_frames);
    for ddl in [
        "CREATE CLASS VehicleEngine TUPLE (size Integer, cylinders Integer, pad String)",
        "CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE (VehicleEngine), \
         transmission String(32))",
        "CREATE CLASS Company TUPLE (name String(32), location String(32))",
        "CREATE CLASS Vehicle TUPLE (id Integer, weight Integer, \
         drivetrain REFERENCE (VehicleDriveTrain), company REFERENCE (Company), \
         pad String)",
    ] {
        db.execute(ddl).unwrap();
    }
    let catalog = db.catalog();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut engines = Vec::with_capacity(spec.n_engines);
    for i in 0..spec.n_engines {
        engines.push(
            catalog
                .new_object(
                    "VehicleEngine",
                    Value::tuple(vec![
                        ("size", Value::Integer(1000 + (i as i32 % 40) * 50)),
                        (
                            "cylinders",
                            Value::Integer(2 + 2 * (rng.gen_range(0..spec.cylinder_values))),
                        ),
                        ("pad", Value::string("e".repeat(400))),
                    ]),
                )
                .unwrap(),
        );
    }
    let mut trains = Vec::with_capacity(spec.n_drivetrains);
    for i in 0..spec.n_drivetrains {
        trains.push(
            catalog
                .new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![
                        ("engine", Value::Ref(engines[i % engines.len()])),
                        (
                            "transmission",
                            Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                        ),
                    ]),
                )
                .unwrap(),
        );
    }
    let mut companies = Vec::with_capacity(spec.n_companies);
    for i in 0..spec.n_companies {
        companies.push(
            catalog
                .new_object(
                    "Company",
                    Value::tuple(vec![
                        ("name", Value::string(format!("Company{i:05}"))),
                        ("location", Value::string("X")),
                    ]),
                )
                .unwrap(),
        );
    }
    // 10% of companies are manufacturers (the Table 15 hitprb = 0.1 shape).
    let manufacturer_pool = (spec.n_companies / 10).max(1);
    for i in 0..spec.n_vehicles {
        catalog
            .new_object(
                "Vehicle",
                Value::tuple(vec![
                    ("id", Value::Integer(i as i32)),
                    ("weight", Value::Integer(700 + (i as i32 % 100) * 12)),
                    ("drivetrain", Value::Ref(trains[i % trains.len()])),
                    (
                        "company",
                        Value::Ref(companies[rng.gen_range(0..manufacturer_pool)]),
                    ),
                    ("pad", Value::string("v".repeat(150))),
                ]),
            )
            .unwrap();
    }
    db.collect_stats().unwrap();
    db
}
