//! Lock manager: shared/exclusive locks on named resources.
//!
//! ESM gave MOOD "controlling data access and concurrency"; the kernel uses
//! it in two places the paper calls out explicitly: extent/file access
//! during query execution, and *locking a class's shared object while a
//! member function is being rewritten* (Section 2: "We provide locking for
//! this operation"). Deadlocks are resolved by timeout, which is what ESM's
//! contemporaries shipped.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, StorageError};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Identifies a lock owner (a transaction or kernel task).
pub type OwnerId = u64;

#[derive(Default)]
struct ResourceState {
    /// Owners currently holding the lock, with their mode.
    holders: HashMap<OwnerId, LockMode>,
    /// Owners waiting (count only; fairness is FIFO-ish via condvar wakeup).
    waiters: usize,
}

impl ResourceState {
    fn compatible(&self, owner: OwnerId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(o, m)| *o == owner || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|o| *o == owner),
        }
    }
}

/// The lock table.
pub struct LockManager {
    table: Mutex<HashMap<String, ResourceState>>,
    released: Condvar,
    timeout: Duration,
    waits: AtomicU64,
    wait_timeouts: AtomicU64,
}

impl LockManager {
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            table: Mutex::new(HashMap::new()),
            released: Condvar::new(),
            timeout,
            waits: AtomicU64::new(0),
            wait_timeouts: AtomicU64::new(0),
        }
    }

    /// Number of times an acquire had to block on an incompatible holder.
    pub fn wait_count(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Number of acquires that gave up at the deadlock timeout.
    pub fn timeout_count(&self) -> u64 {
        self.wait_timeouts.load(Ordering::Relaxed)
    }

    /// Acquire `mode` on `resource` for `owner`, blocking up to the deadlock
    /// timeout. Re-acquisition by the same owner upgrades Shared→Exclusive
    /// when no other holder is present.
    pub fn acquire(&self, owner: OwnerId, resource: &str, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let mut table = self.table.lock();
        loop {
            let state = table.entry(resource.to_string()).or_default();
            if state.compatible(owner, mode) {
                let slot = state.holders.entry(owner).or_insert(mode);
                if mode == LockMode::Exclusive {
                    *slot = LockMode::Exclusive;
                }
                return Ok(());
            }
            state.waiters += 1;
            self.waits.fetch_add(1, Ordering::Relaxed);
            let timed_out = self.released.wait_until(&mut table, deadline).timed_out();
            if let Some(state) = table.get_mut(resource) {
                state.waiters -= 1;
            }
            if timed_out {
                self.wait_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::LockTimeout {
                    resource: resource.to_string(),
                });
            }
        }
    }

    /// Release `owner`'s lock on `resource` (no-op if not held).
    pub fn release(&self, owner: OwnerId, resource: &str) {
        let mut table = self.table.lock();
        if let Some(state) = table.get_mut(resource) {
            state.holders.remove(&owner);
            if state.holders.is_empty() && state.waiters == 0 {
                table.remove(resource);
            }
        }
        drop(table);
        self.released.notify_all();
    }

    /// Release everything `owner` holds (transaction end).
    pub fn release_all(&self, owner: OwnerId) {
        let mut table = self.table.lock();
        table.retain(|_, state| {
            state.holders.remove(&owner);
            !(state.holders.is_empty() && state.waiters == 0)
        });
        drop(table);
        self.released.notify_all();
    }

    /// Mode currently held by `owner` on `resource`, if any.
    pub fn held(&self, owner: OwnerId, resource: &str) -> Option<LockMode> {
        self.table
            .lock()
            .get(resource)
            .and_then(|s| s.holders.get(&owner))
            .copied()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_millis(200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.acquire(1, "extent:Vehicle", LockMode::Shared).unwrap();
        lm.acquire(2, "extent:Vehicle", LockMode::Shared).unwrap();
        assert_eq!(lm.held(1, "extent:Vehicle"), Some(LockMode::Shared));
        assert_eq!(lm.held(2, "extent:Vehicle"), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes_and_times_out() {
        let lm = LockManager::new(Duration::from_millis(30));
        lm.acquire(1, "so:Vehicle", LockMode::Exclusive).unwrap();
        let err = lm.acquire(2, "so:Vehicle", LockMode::Shared).unwrap_err();
        assert!(matches!(err, StorageError::LockTimeout { .. }));
    }

    #[test]
    fn release_unblocks_waiter() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || lm2.acquire(2, "r", LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        lm.release(1, "r");
        t.join().unwrap().unwrap();
        assert_eq!(lm.held(2, "r"), Some(LockMode::Exclusive));
    }

    #[test]
    fn reacquire_upgrades_when_sole_holder() {
        let lm = LockManager::default();
        lm.acquire(1, "r", LockMode::Shared).unwrap();
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        assert_eq!(lm.held(1, "r"), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new(Duration::from_millis(30));
        lm.acquire(1, "r", LockMode::Shared).unwrap();
        lm.acquire(2, "r", LockMode::Shared).unwrap();
        assert!(lm.acquire(1, "r", LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_all_clears_owner() {
        let lm = LockManager::default();
        lm.acquire(1, "a", LockMode::Shared).unwrap();
        lm.acquire(1, "b", LockMode::Exclusive).unwrap();
        lm.release_all(1);
        assert_eq!(lm.held(1, "a"), None);
        assert_eq!(lm.held(1, "b"), None);
        // Resources are free for others immediately.
        lm.acquire(2, "b", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn wait_and_timeout_counters_tick() {
        let lm = LockManager::new(Duration::from_millis(20));
        lm.acquire(1, "r", LockMode::Exclusive).unwrap();
        assert_eq!(lm.wait_count(), 0);
        assert!(lm.acquire(2, "r", LockMode::Shared).is_err());
        assert!(lm.wait_count() >= 1);
        assert_eq!(lm.timeout_count(), 1);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        let counter = Arc::new(Mutex::new(0i32));
        let mut handles = Vec::new();
        for owner in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    lm.acquire(owner, "ctr", LockMode::Exclusive).unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        std::thread::yield_now();
                        *c = v + 1;
                    }
                    lm.release(owner, "ctr");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
