//! The `Join` operator and its four execution methods (Section 3.2 / §6):
//! forward traversal, backward traversal, indexed join (binary join index),
//! and pointer-based hash-partition join.
//!
//! All four compute the same *implicit join* `C.A = D.self` — pairs of
//! (C-object, D-object) where C's reference attribute `A` points at the
//! D-object — but with different access patterns, which the storage-layer
//! metrics expose and the benches compare against the §6 cost formulas.

use std::collections::{HashMap, HashSet};

use mood_catalog::Catalog;
use mood_datamodel::Value;
use mood_storage::exec::{run_chunked, ExecutionConfig};
use mood_storage::{AccessHint, Oid};

use crate::collection::{join_return, Collection, Kind, Obj};
use crate::error::{AlgebraError, Result};
use crate::ops::deref;

pub use mood_cost::JoinMethod;

/// The right-hand side of an implicit join: either a whole class (the
/// executor fetches referenced objects directly by pointer — the common
/// `BIND(Class, d)` plan leaf) or a materialized collection (a prior
/// operator's output; membership is enforced).
#[derive(Debug, Clone, Copy)]
pub enum JoinRhs<'a> {
    Class(&'a str),
    Collection(&'a Collection),
}

/// Extract the reference OIDs from an attribute value (Reference, or
/// Set/List of references — the traversable constructors).
fn ref_oids(v: &Value) -> Vec<Oid> {
    match v {
        Value::Ref(oid) => vec![*oid],
        Value::Set(items) | Value::List(items) => items.iter().filter_map(|i| i.as_oid()).collect(),
        _ => Vec::new(),
    }
}

/// Materialize the objects of any collection (set/list members are
/// dereferenced).
pub fn materialize(catalog: &Catalog, c: &Collection) -> Result<Vec<Obj>> {
    Ok(match c {
        Collection::Extent(objs) => objs.clone(),
        Collection::Set(oids) | Collection::List(oids) => {
            let mut out = Vec::with_capacity(oids.len());
            for &oid in oids {
                out.push(deref(catalog, oid)?);
            }
            out
        }
        Collection::NamedObject(o) => vec![o.clone()],
        Collection::Empty => Vec::new(),
    })
}

/// Chunk-parallel [`materialize`]: set/list members are dereferenced on
/// worker threads in contiguous chunks, concatenated in input order — the
/// same object vector the sequential loop builds, with the same number of
/// page accesses (each identifier dereferenced exactly once).
pub fn materialize_par(
    catalog: &Catalog,
    c: &Collection,
    exec: ExecutionConfig,
) -> Result<Vec<Obj>> {
    match c {
        Collection::Set(oids) | Collection::List(oids) if exec.is_parallel() => {
            run_chunked(exec.parallelism, oids, |_, chunk| {
                chunk.iter().map(|&oid| deref(catalog, oid)).collect()
            })
        }
        other => materialize(catalog, other),
    }
}

struct Rhs {
    /// Membership filter (None: any object of the right class qualifies).
    allowed: Option<HashSet<Oid>>,
    /// Pre-materialized right objects (avoids refetching what a previous
    /// operator already produced).
    cache: HashMap<Oid, Obj>,
    /// Right class for the unmaterialized case.
    class: Option<String>,
}

impl Rhs {
    fn build(_catalog: &Catalog, rhs: &JoinRhs<'_>) -> Result<Rhs> {
        Ok(match rhs {
            JoinRhs::Class(c) => Rhs {
                allowed: None,
                cache: HashMap::new(),
                class: Some(c.to_string()),
            },
            JoinRhs::Collection(col) => {
                let mut allowed = HashSet::new();
                let mut cache = HashMap::new();
                if let Collection::Extent(objs) = col {
                    for o in objs {
                        if let Some(oid) = o.oid {
                            allowed.insert(oid);
                            cache.insert(oid, o.clone());
                        }
                    }
                } else {
                    for oid in col.oids() {
                        allowed.insert(oid);
                    }
                }
                Rhs {
                    allowed: Some(allowed),
                    cache,
                    class: None,
                }
            }
        })
    }

    /// Resolve one referenced OID to a right-side object if it qualifies.
    fn fetch(&mut self, catalog: &Catalog, oid: Oid) -> Result<Option<Obj>> {
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(&oid) {
                return Ok(None);
            }
        }
        if let Some(obj) = self.cache.get(&oid) {
            return Ok(Some(obj.clone()));
        }
        match catalog.get_object(oid) {
            Ok((class, value)) => {
                if let Some(want) = &self.class {
                    if !catalog.is_subclass(&class, want) {
                        return Ok(None);
                    }
                }
                let obj = Obj::stored(oid, value);
                self.cache.insert(oid, obj.clone());
                Ok(Some(obj))
            }
            // Dangling references produce no pair (not an error): deleted
            // targets simply do not join.
            Err(mood_catalog::CatalogError::Storage(_)) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// Execute `Join(left, rhs, method, left.attr = rhs.self)`, returning the
/// joined pairs in left-collection order.
pub fn join(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    method: JoinMethod,
) -> Result<Vec<(Obj, Obj)>> {
    match method {
        JoinMethod::ForwardTraversal => forward(catalog, left, attr, rhs),
        JoinMethod::BackwardTraversal => backward(catalog, left, attr, rhs),
        JoinMethod::BinaryJoinIndex => indexed(catalog, left, attr, rhs),
        JoinMethod::HashPartition => hash_partition(catalog, left, attr, rhs),
    }
}

/// Chunk-parallel [`join`]: identical pairs in identical order, with the
/// same *total* page-access counts as the sequential method (the accesses
/// are redistributed across worker threads, never multiplied — see each
/// method's strategy below).
pub fn join_par(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    method: JoinMethod,
    exec: ExecutionConfig,
) -> Result<Vec<(Obj, Obj)>> {
    if !exec.is_parallel() {
        return join(catalog, left, attr, rhs, method);
    }
    match method {
        JoinMethod::ForwardTraversal => forward_par(catalog, left, attr, rhs, exec),
        JoinMethod::BackwardTraversal => backward_par(catalog, left, attr, rhs, exec),
        JoinMethod::BinaryJoinIndex => indexed_par(catalog, left, attr, rhs, exec),
        JoinMethod::HashPartition => hash_partition_par(catalog, left, attr, rhs, exec),
    }
}

/// Forward traversal: for each left object, chase `attr`'s reference(s) and
/// fetch the target (one random access per reference; §6.1's pattern).
fn forward(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
) -> Result<Vec<(Obj, Obj)>> {
    let mut rhs = Rhs::build(catalog, &rhs)?;
    // Forward traversal pays the pointer fetch per *reference*: clear the
    // cache between left objects so shared targets are refetched, matching
    // the paper's worst-case ftc (no page hits for D). The buffer pool
    // still absorbs repeats when it is large — exactly the effect §6.1
    // calls out.
    let keep_cache = rhs.allowed.is_some();
    let mut out = Vec::new();
    for l in materialize(catalog, left)? {
        if !keep_cache {
            rhs.cache.clear();
        }
        let Some(v) = l.value.field(attr) else {
            continue;
        };
        for oid in ref_oids(v) {
            if let Some(r) = rhs.fetch(catalog, oid)? {
                out.push((l.clone(), r));
            }
        }
    }
    Ok(out)
}

/// Parallel forward traversal.
///
/// * Class rhs: the sequential method clears its target cache between left
///   objects (every reference pays its fetch), so left chunks are fully
///   independent — each worker runs the sequential loop with its own `Rhs`
///   over its chunk. Total fetches: one per reference, same as sequential.
/// * Collection rhs: the sequential method keeps its cache, fetching each
///   distinct qualifying target once. The parallel version performs those
///   fetches in one sequential warm-up pass (first-encounter order — the
///   exact access sequence of the sequential method), then emits pairs from
///   the read-only cache on worker threads.
fn forward_par(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    exec: ExecutionConfig,
) -> Result<Vec<(Obj, Obj)>> {
    let left_objs = materialize(catalog, left)?;
    match &rhs {
        JoinRhs::Class(class) => {
            let class = class.to_string();
            run_chunked(exec.parallelism, &left_objs, |_, chunk| {
                let mut rhs = Rhs {
                    allowed: None,
                    cache: HashMap::new(),
                    class: Some(class.clone()),
                };
                let mut out = Vec::new();
                for l in chunk {
                    rhs.cache.clear();
                    let Some(v) = l.value.field(attr) else {
                        continue;
                    };
                    for oid in ref_oids(v) {
                        if let Some(r) = rhs.fetch(catalog, oid)? {
                            out.push((l.clone(), r));
                        }
                    }
                }
                Ok(out)
            })
        }
        JoinRhs::Collection(_) => {
            let mut warm = Rhs::build(catalog, &rhs)?;
            for l in &left_objs {
                if let Some(v) = l.value.field(attr) {
                    for oid in ref_oids(v) {
                        let _ = warm.fetch(catalog, oid)?;
                    }
                }
            }
            emit_cached_pairs(&left_objs, attr, &warm, exec)
        }
    }
}

/// Emit join pairs for left objects against a fully warmed `Rhs` (every
/// qualifying target already cached) on worker threads. Purely CPU work —
/// no page accesses happen here.
fn emit_cached_pairs(
    left_objs: &[Obj],
    attr: &str,
    rhs: &Rhs,
    exec: ExecutionConfig,
) -> Result<Vec<(Obj, Obj)>> {
    run_chunked(exec.parallelism, left_objs, |_, chunk| {
        let mut out = Vec::new();
        for l in chunk {
            let Some(v) = l.value.field(attr) else {
                continue;
            };
            for oid in ref_oids(v) {
                if let Some(allowed) = &rhs.allowed {
                    if !allowed.contains(&oid) {
                        continue;
                    }
                }
                // Qualifying targets were cached by the warm-up pass; a
                // qualifying-but-uncached OID is a dangling reference and
                // produces no pair, as in the sequential method.
                if let Some(r) = rhs.cache.get(&oid) {
                    out.push((l.clone(), r.clone()));
                }
            }
        }
        Ok(out)
    })
}

/// Backward traversal: sequentially scan the *left* class extent and test
/// every object's reference against the right side (§6.2's pattern: used
/// when the D-objects are known and C must be found).
fn backward(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
) -> Result<Vec<(Obj, Obj)>> {
    let mut rhs = match rhs {
        // §6.2's access pattern: the D side is read by one sequential
        // extent scan up front; the join itself is then pure CPU work
        // (reference-membership tests against the materialized map).
        JoinRhs::Class(class) => {
            let mut allowed = HashSet::new();
            let mut cache = HashMap::new();
            catalog.extent_with(class, AccessHint::Sequential, &mut |oid, value| {
                allowed.insert(oid);
                cache.insert(oid, Obj::stored(oid, value));
                true
            })?;
            Rhs {
                allowed: Some(allowed),
                cache,
                class: None,
            }
        }
        other => Rhs::build(catalog, &other)?,
    };
    let mut out = Vec::new();
    for l in materialize(catalog, left)? {
        let Some(v) = l.value.field(attr) else {
            continue;
        };
        for oid in ref_oids(v) {
            if let Some(r) = rhs.fetch(catalog, oid)? {
                out.push((l.clone(), r));
            }
        }
    }
    Ok(out)
}

/// Parallel backward traversal: the right side is materialized up front by
/// the same sequential scan the sequential method performs (that scan *is*
/// the §6.2 access pattern — parallelizing it would change the page-access
/// ordering); the subsequent reference-membership testing is pure CPU work
/// and runs on worker threads over left chunks.
fn backward_par(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    exec: ExecutionConfig,
) -> Result<Vec<(Obj, Obj)>> {
    let left_objs = materialize(catalog, left)?;
    let mut warm = match rhs {
        JoinRhs::Class(class) => {
            let mut allowed = HashSet::new();
            let mut cache = HashMap::new();
            catalog.extent_with(class, AccessHint::Sequential, &mut |oid, value| {
                allowed.insert(oid);
                cache.insert(oid, Obj::stored(oid, value));
                true
            })?;
            Rhs {
                allowed: Some(allowed),
                cache,
                class: None,
            }
        }
        other => Rhs::build(catalog, &other)?,
    };
    // Collection rhs built from a set/list has membership but no cached
    // objects yet; warm it in first-encounter order (the sequential access
    // sequence) so emission needs no further page accesses.
    for l in &left_objs {
        if let Some(v) = l.value.field(attr) {
            for oid in ref_oids(v) {
                let _ = warm.fetch(catalog, oid)?;
            }
        }
    }
    emit_cached_pairs(&left_objs, attr, &warm, exec)
}

/// Indexed join through the *binary join index* on (left-class, attr): for
/// each qualifying right object, probe the index for the left OIDs that
/// reference it (§6.3's pattern). Requires the index to exist and the left
/// collection to be a class extent (the index covers the stored extent).
fn indexed(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
) -> Result<Vec<(Obj, Obj)>> {
    // Identify the left class from the extent's stored objects.
    let left_objs = materialize(catalog, left)?;
    let Some(first_oid) = left_objs.iter().find_map(|o| o.oid) else {
        return Ok(Vec::new());
    };
    let (left_class, _) = catalog.get_object(first_oid)?;
    let left_filter: HashSet<Oid> = left_objs.iter().filter_map(|o| o.oid).collect();
    let left_by_oid: HashMap<Oid, &Obj> = left_objs
        .iter()
        .filter_map(|o| o.oid.map(|id| (id, o)))
        .collect();

    let right_objs: Vec<Obj> = match rhs {
        JoinRhs::Collection(c) => materialize(catalog, c)?,
        JoinRhs::Class(c) => {
            let mut objs = Vec::new();
            catalog.extent_with(c, AccessHint::Sequential, &mut |oid, v| {
                objs.push(Obj::stored(oid, v));
                true
            })?;
            objs
        }
    };
    if catalog.index(&left_class, attr).is_none() {
        return Err(AlgebraError::NotApplicable {
            operator: "Join(BINARY_JOIN_INDEX)",
            detail: format!("no binary join index on {left_class}.{attr}"),
        });
    }
    let mut out = Vec::new();
    for r in &right_objs {
        let Some(r_oid) = r.oid else { continue };
        for l_oid in catalog.index_lookup(&left_class, attr, &Value::Ref(r_oid))? {
            if left_filter.contains(&l_oid) {
                out.push(((*left_by_oid[&l_oid]).clone(), r.clone()));
            }
        }
    }
    // Index probes return right-major order; normalize to left order for
    // comparability across methods.
    out.sort_by_key(|(l, _)| l.oid);
    Ok(out)
}

/// Parallel indexed join: index probes are read-only, so right objects are
/// probed on worker threads in contiguous chunks. Each right object is
/// probed exactly once either way (same index page-access total), the
/// chunk-ordered concatenation reproduces the sequential right-major pair
/// order, and the final stable sort by left OID is shared with the
/// sequential method — identical output.
fn indexed_par(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    exec: ExecutionConfig,
) -> Result<Vec<(Obj, Obj)>> {
    let left_objs = materialize(catalog, left)?;
    let Some(first_oid) = left_objs.iter().find_map(|o| o.oid) else {
        return Ok(Vec::new());
    };
    let (left_class, _) = catalog.get_object(first_oid)?;
    let left_filter: HashSet<Oid> = left_objs.iter().filter_map(|o| o.oid).collect();
    let left_by_oid: HashMap<Oid, &Obj> = left_objs
        .iter()
        .filter_map(|o| o.oid.map(|id| (id, o)))
        .collect();

    let right_objs: Vec<Obj> = match rhs {
        JoinRhs::Collection(c) => materialize(catalog, c)?,
        JoinRhs::Class(c) => {
            let mut objs = Vec::new();
            catalog.extent_with(c, AccessHint::Sequential, &mut |oid, v| {
                objs.push(Obj::stored(oid, v));
                true
            })?;
            objs
        }
    };
    if catalog.index(&left_class, attr).is_none() {
        return Err(AlgebraError::NotApplicable {
            operator: "Join(BINARY_JOIN_INDEX)",
            detail: format!("no binary join index on {left_class}.{attr}"),
        });
    }
    let mut out = run_chunked(exec.parallelism, &right_objs, |_, chunk| {
        let mut pairs = Vec::new();
        for r in chunk {
            let Some(r_oid) = r.oid else { continue };
            for l_oid in catalog.index_lookup(&left_class, attr, &Value::Ref(r_oid))? {
                if left_filter.contains(&l_oid) {
                    pairs.push(((*left_by_oid[&l_oid]).clone(), r.clone()));
                }
            }
        }
        Ok::<_, AlgebraError>(pairs)
    })?;
    out.sort_by_key(|(l, _)| l.oid);
    Ok(out)
}

/// Pointer-based hash-partition join (§6.4): partition the left objects on
/// the pointer field, then chase each *distinct* pointer once and emit all
/// pairs for that target. Only applicable when `attr` is a plain Reference
/// (the paper's stated restriction).
fn hash_partition(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
) -> Result<Vec<(Obj, Obj)>> {
    let mut rhs = Rhs::build(catalog, &rhs)?;
    let left_objs = materialize(catalog, left)?;
    let partitions = partition_on_ref(&left_objs, attr)?;
    // Probe phase: each distinct target fetched once.
    let mut keys: Vec<Oid> = partitions.keys().copied().collect();
    keys.sort();
    let mut out = Vec::new();
    for oid in keys {
        if let Some(r) = rhs.fetch(catalog, oid)? {
            for &i in &partitions[&oid] {
                out.push((left_objs[i].clone(), r.clone()));
            }
        }
    }
    out.sort_by_key(|(l, _)| l.oid);
    Ok(out)
}

/// Partition phase shared by the sequential and parallel hash-partition
/// join: group left-object indices by referenced OID.
fn partition_on_ref(left_objs: &[Obj], attr: &str) -> Result<HashMap<Oid, Vec<usize>>> {
    let mut partitions: HashMap<Oid, Vec<usize>> = HashMap::new();
    for (i, l) in left_objs.iter().enumerate() {
        let Some(v) = l.value.field(attr) else {
            continue;
        };
        match v {
            Value::Ref(oid) => partitions.entry(*oid).or_default().push(i),
            Value::Set(_) | Value::List(_) => {
                return Err(AlgebraError::NotApplicable {
                    operator: "Join(HASH_PARTITION)",
                    detail: format!(
                        "{attr} is a collection of references; hash-partition join \
                         applies only when the constructor of the attribute is Reference"
                    ),
                })
            }
            _ => {}
        }
    }
    Ok(partitions)
}

/// Parallel hash-partition join: the partition phase is shared, then the
/// *sorted distinct keys* are split into contiguous chunks probed on worker
/// threads. Workers hold disjoint key sets, so each target is still fetched
/// exactly once globally (per-worker `Rhs` state never overlaps); the
/// chunk-ordered concatenation reproduces the sequential key-order pair
/// stream, and the shared final stable sort by left OID makes the output
/// identical.
fn hash_partition_par(
    catalog: &Catalog,
    left: &Collection,
    attr: &str,
    rhs: JoinRhs<'_>,
    exec: ExecutionConfig,
) -> Result<Vec<(Obj, Obj)>> {
    let base = Rhs::build(catalog, &rhs)?;
    let left_objs = materialize(catalog, left)?;
    let partitions = partition_on_ref(&left_objs, attr)?;
    let mut keys: Vec<Oid> = partitions.keys().copied().collect();
    keys.sort();
    let mut out = run_chunked(exec.parallelism, &keys, |_, chunk| {
        let mut rhs = Rhs {
            allowed: base.allowed.clone(),
            cache: base.cache.clone(),
            class: base.class.clone(),
        };
        let mut pairs = Vec::new();
        for &oid in chunk {
            if let Some(r) = rhs.fetch(catalog, oid)? {
                for &i in &partitions[&oid] {
                    pairs.push((left_objs[i].clone(), r.clone()));
                }
            }
        }
        Ok::<_, AlgebraError>(pairs)
    })?;
    out.sort_by_key(|(l, _)| l.oid);
    Ok(out)
}

/// Wrap joined pairs as a collection with the Table 2 return kind.
/// Extent results are transient ⟨left, right⟩ tuples; set/list results keep
/// the left side's identifiers; a named-object pair keeps the left object.
pub fn pairs_to_collection(pairs: Vec<(Obj, Obj)>, k1: Kind, k2: Kind) -> Collection {
    match join_return(k1, k2) {
        Kind::Extent => Collection::Extent(
            pairs
                .into_iter()
                .map(|(l, r)| {
                    Obj::transient(Value::Tuple(vec![
                        ("left".to_string(), l.oid.map(Value::Ref).unwrap_or(l.value)),
                        (
                            "right".to_string(),
                            r.oid.map(Value::Ref).unwrap_or(r.value),
                        ),
                    ]))
                })
                .collect(),
        ),
        Kind::Set => Collection::set_from(pairs.iter().filter_map(|(l, _)| l.oid).collect()),
        Kind::List => Collection::List(pairs.iter().filter_map(|(l, _)| l.oid).collect()),
        Kind::NamedObject => match pairs.into_iter().next() {
            Some((l, _)) => Collection::NamedObject(l),
            None => Collection::Empty,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::bind_class;
    use mood_catalog::{ClassBuilder, IndexKind};
    use mood_datamodel::TypeDescriptor;
    use mood_storage::StorageManager;
    use std::sync::Arc;

    /// Build the paper's Vehicle→DriveTrain→Engine shape at small scale.
    fn setup() -> (Arc<Catalog>, Vec<Oid>, Vec<Oid>) {
        let sm = Arc::new(StorageManager::in_memory());
        let cat = Arc::new(Catalog::create(sm).unwrap());
        cat.define_class(
            ClassBuilder::class("VehicleDriveTrain")
                .attribute("transmission", TypeDescriptor::string()),
        )
        .unwrap();
        cat.define_class(
            ClassBuilder::class("Vehicle")
                .attribute("id", TypeDescriptor::integer())
                .attribute("drivetrain", TypeDescriptor::reference("VehicleDriveTrain")),
        )
        .unwrap();
        let mut trains = Vec::new();
        for i in 0..5 {
            trains.push(
                cat.new_object(
                    "VehicleDriveTrain",
                    Value::tuple(vec![(
                        "transmission",
                        Value::string(if i % 2 == 0 { "AUTOMATIC" } else { "MANUAL" }),
                    )]),
                )
                .unwrap(),
            );
        }
        let mut cars = Vec::new();
        for i in 0..20 {
            cars.push(
                cat.new_object(
                    "Vehicle",
                    Value::tuple(vec![
                        ("id", Value::Integer(i as i32)),
                        ("drivetrain", Value::Ref(trains[i % 5])),
                    ]),
                )
                .unwrap(),
            );
        }
        (cat, cars, trains)
    }

    fn pair_ids(pairs: &[(Obj, Obj)]) -> Vec<(Oid, Oid)> {
        let mut v: Vec<_> = pairs
            .iter()
            .map(|(l, r)| (l.oid.unwrap(), r.oid.unwrap()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn all_methods_agree_on_class_rhs() {
        let (cat, _, _) = setup();
        cat.create_index("Vehicle", "drivetrain", IndexKind::BTree, false)
            .unwrap();
        let left = bind_class(&cat, "Vehicle", false, &[]).unwrap();
        let expected = {
            let pairs = join(
                &cat,
                &left,
                "drivetrain",
                JoinRhs::Class("VehicleDriveTrain"),
                JoinMethod::ForwardTraversal,
            )
            .unwrap();
            assert_eq!(pairs.len(), 20, "every car joins its drivetrain");
            pair_ids(&pairs)
        };
        for method in [
            JoinMethod::BackwardTraversal,
            JoinMethod::BinaryJoinIndex,
            JoinMethod::HashPartition,
        ] {
            let pairs = join(
                &cat,
                &left,
                "drivetrain",
                JoinRhs::Class("VehicleDriveTrain"),
                method,
            )
            .unwrap();
            assert_eq!(pair_ids(&pairs), expected, "{method:?} disagrees");
        }
    }

    #[test]
    fn membership_filter_on_collection_rhs() {
        let (cat, _, trains) = setup();
        let left = bind_class(&cat, "Vehicle", false, &[]).unwrap();
        // Only the first drivetrain qualifies.
        let rhs = Collection::set_from(vec![trains[0]]);
        let pairs = join(
            &cat,
            &left,
            "drivetrain",
            JoinRhs::Collection(&rhs),
            JoinMethod::ForwardTraversal,
        )
        .unwrap();
        assert_eq!(pairs.len(), 4, "cars 0,5,10,15");
        assert!(pairs.iter().all(|(_, r)| r.oid == Some(trains[0])));
    }

    #[test]
    fn hash_partition_fetches_each_target_once() {
        let (cat, _, _) = setup();
        let left = bind_class(&cat, "Vehicle", false, &[]).unwrap();
        let metrics = cat.storage().metrics();
        let before = metrics.snapshot();
        let pairs = join(
            &cat,
            &left,
            "drivetrain",
            JoinRhs::Class("VehicleDriveTrain"),
            JoinMethod::HashPartition,
        )
        .unwrap();
        assert_eq!(pairs.len(), 20);
        let delta = metrics.snapshot().delta(&before);
        // 5 distinct targets, all on one page → very few physical reads
        // (buffer hits don't count); the point is it did not fetch 20 times.
        assert!(delta.buffer_hits + delta.buffer_misses <= 8, "{delta:?}");
    }

    #[test]
    fn indexed_join_requires_index() {
        let (cat, _, _) = setup();
        let left = bind_class(&cat, "Vehicle", false, &[]).unwrap();
        let err = join(
            &cat,
            &left,
            "drivetrain",
            JoinRhs::Class("VehicleDriveTrain"),
            JoinMethod::BinaryJoinIndex,
        )
        .unwrap_err();
        assert!(matches!(err, AlgebraError::NotApplicable { .. }));
    }

    #[test]
    fn dangling_references_produce_no_pairs() {
        let (cat, cars, trains) = setup();
        cat.delete_object(trains[0]).unwrap();
        let left = bind_class(&cat, "Vehicle", false, &[]).unwrap();
        let pairs = join(
            &cat,
            &left,
            "drivetrain",
            JoinRhs::Class("VehicleDriveTrain"),
            JoinMethod::ForwardTraversal,
        )
        .unwrap();
        assert_eq!(pairs.len(), 16, "4 cars lost their drivetrain");
        let _ = cars;
    }

    #[test]
    fn null_references_skip() {
        let (cat, _, _) = setup();
        let lonely = cat
            .new_object("Vehicle", Value::tuple(vec![("id", Value::Integer(99))]))
            .unwrap();
        let left = Collection::set_from(vec![lonely]);
        let pairs = join(
            &cat,
            &left,
            "drivetrain",
            JoinRhs::Class("VehicleDriveTrain"),
            JoinMethod::ForwardTraversal,
        )
        .unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn set_valued_references_join_forward_but_not_hash() {
        let (cat, _, _) = setup();
        cat.define_class(ClassBuilder::class("Fleet").attribute(
            "vehicles",
            TypeDescriptor::set_of(TypeDescriptor::reference("Vehicle")),
        ))
        .unwrap();
        let cars = cat.extent("Vehicle").unwrap();
        let fleet = cat
            .new_object(
                "Fleet",
                Value::tuple(vec![(
                    "vehicles",
                    Value::Set(vec![Value::Ref(cars[0].0), Value::Ref(cars[1].0)]),
                )]),
            )
            .unwrap();
        let left = Collection::set_from(vec![fleet]);
        let pairs = join(
            &cat,
            &left,
            "vehicles",
            JoinRhs::Class("Vehicle"),
            JoinMethod::ForwardTraversal,
        )
        .unwrap();
        assert_eq!(pairs.len(), 2);
        // The paper: hash-partition "can only be applied when constructor
        // of attribute A is Reference".
        let err = join(
            &cat,
            &left,
            "vehicles",
            JoinRhs::Class("Vehicle"),
            JoinMethod::HashPartition,
        )
        .unwrap_err();
        assert!(matches!(err, AlgebraError::NotApplicable { .. }));
    }

    #[test]
    fn pairs_to_collection_follows_table2() {
        let (cat, _, _) = setup();
        let left = bind_class(&cat, "Vehicle", false, &[]).unwrap();
        let pairs = join(
            &cat,
            &left,
            "drivetrain",
            JoinRhs::Class("VehicleDriveTrain"),
            JoinMethod::ForwardTraversal,
        )
        .unwrap();
        let as_extent = pairs_to_collection(pairs.clone(), Kind::Extent, Kind::Extent);
        assert_eq!(as_extent.kind(), Some(Kind::Extent));
        assert_eq!(as_extent.len(), 20);
        let as_set = pairs_to_collection(pairs.clone(), Kind::Set, Kind::List);
        assert_eq!(as_set.kind(), Some(Kind::Set));
        assert_eq!(as_set.len(), 20, "20 distinct left oids");
        let as_named = pairs_to_collection(pairs, Kind::NamedObject, Kind::NamedObject);
        assert_eq!(as_named.kind(), Some(Kind::NamedObject));
    }
}
