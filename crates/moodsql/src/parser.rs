//! MOODSQL recursive-descent parser.

use mood_datamodel::{BasicType, TypeDescriptor};

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::token::{lex, Kw, Tok};

/// Parse one statement (a trailing `;` is allowed).
pub fn parse(src: &str) -> Result<Statement> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.pos != p.toks.len() {
        return Err(p.err(format!("trailing tokens after statement: {:?}", p.peek())));
    }
    Ok(stmt)
}

/// Parse a standalone expression (used by the executor to evaluate
/// predicate strings embedded in access plans).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err(format!("trailing tokens after expression: {:?}", p.peek())));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek() == Some(&Tok::Kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            // Non-reserved words usable as identifiers in context.
            Some(Tok::Kw(Kw::Set)) => Ok("set".to_string()),
            Some(Tok::Kw(Kw::List)) => Ok("list".to_string()),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Tok::Kw(Kw::Select)) => Ok(Statement::Select(self.select()?)),
            Some(Tok::Kw(Kw::Explain)) => {
                self.pos += 1;
                if self.eat_kw(Kw::Analyze) {
                    Ok(Statement::ExplainAnalyze(self.select()?))
                } else {
                    Ok(Statement::Explain(self.select()?))
                }
            }
            Some(Tok::Kw(Kw::Show)) => {
                self.pos += 1;
                self.expect_kw(Kw::Metrics)?;
                Ok(Statement::ShowMetrics)
            }
            Some(Tok::Kw(Kw::Create)) => self.create(),
            Some(Tok::Kw(Kw::Drop)) => self.drop(),
            Some(Tok::Kw(Kw::New)) => self.new_object(),
            Some(Tok::Kw(Kw::Define)) => self.define_method(),
            Some(Tok::Kw(Kw::Delete)) => self.delete(),
            Some(Tok::Kw(Kw::Update)) => self.update(),
            Some(Tok::Kw(Kw::Begin)) => {
                self.pos += 1;
                self.eat_kw(Kw::Transaction); // optional noise word
                Ok(Statement::Begin)
            }
            Some(Tok::Kw(Kw::Commit)) => {
                self.pos += 1;
                self.eat_kw(Kw::Transaction);
                Ok(Statement::Commit)
            }
            Some(Tok::Kw(Kw::Rollback)) => {
                self.pos += 1;
                self.eat_kw(Kw::Transaction);
                Ok(Statement::Rollback)
            }
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Kw::Select)?;
        let distinct = self.eat_kw(Kw::Distinct);
        let mut projection = vec![self.expr()?];
        while self.eat_sym(",") {
            projection.push(self.expr()?);
        }
        self.expect_kw(Kw::From)?;
        let mut from = vec![self.from_item()?];
        while self.eat_sym(",") {
            from.push(self.from_item()?);
        }
        // Clause order per the grammar in Section 3.1: GROUP BY may precede
        // WHERE in the printed grammar; accept both orders.
        let mut group_by = Vec::new();
        let mut having = None;
        let mut where_clause = None;
        let mut order_by = Vec::new();
        loop {
            if self.eat_kw(Kw::Group) {
                self.expect_kw(Kw::By)?;
                group_by.push(self.path_ref()?);
                while self.eat_sym(",") {
                    group_by.push(self.path_ref()?);
                }
                if self.eat_kw(Kw::Having) {
                    having = Some(self.expr()?);
                }
            } else if self.eat_kw(Kw::Where) {
                where_clause = Some(self.expr()?);
            } else if self.eat_kw(Kw::Order) {
                self.expect_kw(Kw::By)?;
                loop {
                    let path = self.path_ref()?;
                    let asc = if self.eat_kw(Kw::Desc) {
                        false
                    } else {
                        self.eat_kw(Kw::Asc);
                        true
                    };
                    order_by.push((path, asc));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM-clause item
    fn from_item(&mut self) -> Result<FromItem> {
        let every = self.eat_kw(Kw::Every);
        let class = self.ident()?;
        let mut minus = Vec::new();
        while self.eat_sym("-") {
            minus.push(self.ident()?);
        }
        let var = self.ident()?;
        Ok(FromItem {
            class,
            every,
            minus,
            var,
        })
    }

    fn path_ref(&mut self) -> Result<PathRef> {
        let var = self.ident()?;
        let mut segments = Vec::new();
        while matches!(self.peek(), Some(Tok::Sym("."))) {
            // A trailing method call belongs to expr(), not path_ref.
            if matches!(self.peek2(), Some(Tok::Ident(_)))
                && matches!(self.toks.get(self.pos + 2), Some(Tok::Sym("(")))
            {
                break;
            }
            self.pos += 1;
            segments.push(self.ident()?);
        }
        Ok(PathRef { var, segments })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence: OR < AND < NOT < compare < add < mul < unary)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw(Kw::Or) {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_kw(Kw::And) {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Expr::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Kw::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        if self.eat_kw(Kw::Between) {
            let lo = self.add_expr()?;
            self.expect_kw(Kw::And)?;
            let hi = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        let op = match self.peek() {
            Some(Tok::Sym("=")) => CmpOp::Eq,
            Some(Tok::Sym("<>")) => CmpOp::Ne,
            Some(Tok::Sym("<")) => CmpOp::Lt,
            Some(Tok::Sym("<=")) => CmpOp::Le,
            Some(Tok::Sym(">")) => CmpOp::Gt,
            Some(Tok::Sym(">=")) => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(Expr::Compare {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                '+'
            } else if self.eat_sym("-") {
                '-'
            } else {
                return Ok(left);
            };
            let right = self.mul_expr()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("*") {
                '*'
            } else if self.eat_sym("/") {
                '/'
            } else if self.eat_sym("%") {
                '%'
            } else {
                return Ok(left);
            };
            let right = self.unary_expr()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Literal(Lit::Int(i)) => Expr::Literal(Lit::Int(-i)),
                Expr::Literal(Lit::Float(x)) => Expr::Literal(Lit::Float(-x)),
                other => Expr::Arith {
                    op: '-',
                    left: Box::new(Expr::Literal(Lit::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Int(i)))
            }
            Some(Tok::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Float(x)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Str(s)))
            }
            Some(Tok::Kw(Kw::True)) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Bool(true)))
            }
            Some(Tok::Kw(Kw::False)) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Bool(false)))
            }
            Some(Tok::Kw(Kw::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Null))
            }
            Some(Tok::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Sym("*")) => Err(self.err("'*' is only valid inside COUNT(*)")),
            Some(Tok::Ident(name)) => {
                // Aggregate call?
                if let Some(func) = AggFunc::parse(&name) {
                    if matches!(self.peek2(), Some(Tok::Sym("("))) {
                        self.pos += 2;
                        if self.eat_sym("*") {
                            self.expect_sym(")")?;
                            return Ok(Expr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                }
                let path = self.path_ref()?;
                // Method call: path '.' ident '(' args ')'.
                if matches!(self.peek(), Some(Tok::Sym(".")))
                    && matches!(self.peek2(), Some(Tok::Ident(_)))
                    && matches!(self.toks.get(self.pos + 2), Some(Tok::Sym("(")))
                {
                    self.pos += 1;
                    let method = self.ident()?;
                    self.expect_sym("(")?;
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    return Ok(Expr::MethodCall {
                        base: path,
                        method,
                        args,
                    });
                }
                Ok(Expr::Path(path))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Create)?;
        if self.eat_kw(Kw::Class) {
            return self.create_class();
        }
        // CREATE [UNIQUE] [HASH|BTREE] INDEX ON Class(attribute)
        let unique = self.eat_kw(Kw::Unique);
        let hash = if self.eat_kw(Kw::Hash) {
            true
        } else {
            self.eat_kw(Kw::Btree);
            false
        };
        self.expect_kw(Kw::Index)?;
        self.expect_kw(Kw::On)?;
        let class = self.ident()?;
        self.expect_sym("(")?;
        let mut attribute = self.ident()?;
        // A dotted attribute creates a *path index* over the whole chain.
        while self.eat_sym(".") {
            attribute.push('.');
            attribute.push_str(&self.ident()?);
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex {
            class,
            attribute,
            unique,
            hash,
        })
    }

    fn create_class(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        let mut attributes = Vec::new();
        let mut methods = Vec::new();
        let mut inherits = Vec::new();
        loop {
            if self.eat_kw(Kw::Tuple) {
                self.expect_sym("(")?;
                if !self.eat_sym(")") {
                    loop {
                        let attr = self.ident()?;
                        let ty = self.type_name()?;
                        attributes.push((attr, ty));
                        if self.eat_sym(")") {
                            break;
                        }
                        self.expect_sym(",")?;
                        // Tolerate a trailing comma before ')', as in the
                        // paper's own listing.
                        if self.eat_sym(")") {
                            break;
                        }
                    }
                }
            } else if self.eat_kw(Kw::Methods) {
                self.eat_sym(":");
                // method: name ( params ) ReturnType [,]
                while let Some(Tok::Ident(_)) = self.peek() {
                    // Lookahead: ident '(' — otherwise it's not a method.
                    if !matches!(self.peek2(), Some(Tok::Sym("("))) {
                        break;
                    }
                    let mname = self.ident()?;
                    self.expect_sym("(")?;
                    let mut params = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            let pname = self.ident()?;
                            let pty = self.type_name()?;
                            params.push((pname, pty));
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    let returns = self.type_name()?;
                    methods.push(MethodDecl {
                        name: mname,
                        params,
                        returns,
                    });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else if self.eat_kw(Kw::Inherits) {
                self.expect_kw(Kw::From)?;
                inherits.push(self.ident()?);
                while self.eat_sym(",") {
                    inherits.push(self.ident()?);
                }
            } else {
                break;
            }
        }
        Ok(Statement::CreateClass(CreateClass {
            name,
            attributes,
            methods,
            inherits,
        }))
    }

    /// Type syntax: `Integer | Float | LongInteger | String[(n)] | Char |
    /// Boolean | REFERENCE (Class) | SET (type) | LIST (type) |
    /// TUPLE (a T, …)`.
    fn type_name(&mut self) -> Result<TypeDescriptor> {
        if self.eat_kw(Kw::Reference) {
            self.expect_sym("(")?;
            let class = self.ident()?;
            self.expect_sym(")")?;
            return Ok(TypeDescriptor::Reference(class));
        }
        if self.eat_kw(Kw::Set) {
            self.expect_sym("(")?;
            let inner = self.type_name()?;
            self.expect_sym(")")?;
            return Ok(TypeDescriptor::Set(Box::new(inner)));
        }
        if self.eat_kw(Kw::List) {
            self.expect_sym("(")?;
            let inner = self.type_name()?;
            self.expect_sym(")")?;
            return Ok(TypeDescriptor::List(Box::new(inner)));
        }
        if self.eat_kw(Kw::Tuple) {
            self.expect_sym("(")?;
            let mut fields = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    let fname = self.ident()?;
                    let fty = self.type_name()?;
                    fields.push((fname, fty));
                    if self.eat_sym(")") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
            }
            return Ok(TypeDescriptor::Tuple(fields));
        }
        let name = self.ident()?;
        let basic =
            BasicType::parse(&name).ok_or_else(|| self.err(format!("unknown type {name}")))?;
        // String(32)-style length bounds are parsed and ignored (our
        // strings are unbounded).
        if basic == BasicType::String && self.eat_sym("(") {
            match self.next() {
                Some(Tok::Int(_)) => {}
                other => return Err(self.err(format!("expected string length, got {other:?}"))),
            }
            self.expect_sym(")")?;
        }
        Ok(TypeDescriptor::Basic(basic))
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Drop)?;
        if self.eat_kw(Kw::Class) {
            return Ok(Statement::DropClass(self.ident()?));
        }
        if self.eat_kw(Kw::Method) {
            let class = self.ident()?;
            self.expect_sym("::")?;
            let name = self.ident()?;
            return Ok(Statement::DropMethod { class, name });
        }
        Err(self.err("expected CLASS or METHOD after DROP"))
    }

    /// `new Employee <'Budak Arpinar', 'Computer Engineer', 1969>`
    fn new_object(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::New)?;
        let class = self.ident()?;
        self.expect_sym("<")?;
        let mut values = Vec::new();
        if !self.eat_sym(">") {
            loop {
                let v = match self.next() {
                    Some(Tok::Int(i)) => Lit::Int(i),
                    Some(Tok::Float(x)) => Lit::Float(x),
                    Some(Tok::Str(s)) => Lit::Str(s),
                    Some(Tok::Kw(Kw::True)) => Lit::Bool(true),
                    Some(Tok::Kw(Kw::False)) => Lit::Bool(false),
                    Some(Tok::Kw(Kw::Null)) => Lit::Null,
                    Some(Tok::Sym("-")) => match self.next() {
                        Some(Tok::Int(i)) => Lit::Int(-i),
                        Some(Tok::Float(x)) => Lit::Float(-x),
                        other => {
                            return Err(
                                self.err(format!("expected number after '-', got {other:?}"))
                            )
                        }
                    },
                    other => return Err(self.err(format!("expected literal, got {other:?}"))),
                };
                values.push(v);
                if self.eat_sym(">") {
                    break;
                }
                self.expect_sym(",")?;
            }
        }
        Ok(Statement::NewObject { class, values })
    }

    /// `DEFINE METHOD Class::name(p Type, …) RETURNS Type AS 'body'`
    fn define_method(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Define)?;
        self.expect_kw(Kw::Method)?;
        let class = self.ident()?;
        self.expect_sym("::")?;
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.eat_sym(")") {
            loop {
                let pname = self.ident()?;
                let pty = self.type_name()?;
                params.push((pname, pty));
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
        }
        self.expect_kw(Kw::Returns)?;
        let returns = self.type_name()?;
        self.expect_kw(Kw::As)?;
        let body = match self.next() {
            Some(Tok::Str(s)) => s,
            other => return Err(self.err(format!("expected method body string, got {other:?}"))),
        };
        Ok(Statement::DefineMethod {
            class,
            name,
            params,
            returns,
            body,
        })
    }

    /// `UPDATE Class v SET a = expr, … [WHERE …]`
    fn update(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Update)?;
        let class = self.ident()?;
        let var = self.ident()?;
        self.expect_kw(Kw::Set)?;
        let mut assignments = Vec::new();
        loop {
            let attr = self.ident()?;
            self.expect_sym("=")?;
            // Assignment right-hand sides are arithmetic expressions (no
            // comparisons), so parse at additive precedence.
            let value = self.add_expr()?;
            assignments.push((attr, value));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw(Kw::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            class,
            var,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Delete)?;
        self.expect_kw(Kw::From)?;
        let class = self.ident()?;
        let var = self.ident()?;
        let where_clause = if self.eat_kw(Kw::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            class,
            var,
            where_clause,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_section_3_1() {
        let stmt = parse(
            "SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v \
             WHERE c.drivetrain.transmission = 'AUTOMATIC' AND \
             c.drivetrain.engine = v AND v.cylinders > 4",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].class, "Automobile");
        assert!(s.from[0].every);
        assert_eq!(s.from[0].minus, vec!["JapaneseAuto"]);
        assert_eq!(s.from[0].var, "c");
        assert_eq!(s.from[1].class, "VehicleEngine");
        let Some(Expr::And(parts)) = s.where_clause else {
            panic!()
        };
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].render(), "c.drivetrain.transmission = 'AUTOMATIC'");
        assert_eq!(parts[1].render(), "c.drivetrain.engine = v");
        assert_eq!(parts[2].render(), "v.cylinders > 4");
    }

    #[test]
    fn example_8_1_query() {
        let stmt = parse(
            "Select v From Vehicle v \
             where v.company.name = 'BMW' and v.drivetrain.engine.cylinders = 2",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.projection[0].render(), "v");
        let Some(Expr::And(parts)) = s.where_clause else {
            panic!()
        };
        assert_eq!(parts[0].render(), "v.company.name = 'BMW'");
        assert_eq!(parts[1].render(), "v.drivetrain.engine.cylinders = 2");
    }

    #[test]
    fn create_class_vehicle_from_paper() {
        let stmt = parse(
            "CREATE CLASS Vehicle \
             TUPLE ( id Integer, weight Integer, \
                     drivetrain REFERENCE (VehicleDriveTrain), \
                     manufacturer REFERENCE (Company) ) \
             METHODS: lbweight () Integer, weight () Integer,",
        )
        .unwrap();
        let Statement::CreateClass(c) = stmt else {
            panic!()
        };
        assert_eq!(c.name, "Vehicle");
        assert_eq!(c.attributes.len(), 4);
        assert_eq!(c.attributes[0].0, "id");
        assert_eq!(
            c.attributes[2].1,
            TypeDescriptor::Reference("VehicleDriveTrain".into())
        );
        assert_eq!(c.methods.len(), 2);
        assert_eq!(c.methods[0].name, "lbweight");
        assert!(c.inherits.is_empty());
    }

    #[test]
    fn create_class_with_inheritance_and_string_bound() {
        let stmt = parse(
            "CREATE CLASS VehicleDriveTrain \
             TUPLE ( engine REFERENCE (VehicleEngine), transmission String(32) )",
        )
        .unwrap();
        let Statement::CreateClass(c) = stmt else {
            panic!()
        };
        assert_eq!(c.attributes[1].1, TypeDescriptor::string());
        let stmt = parse("CREATE CLASS JapaneseAuto INHERITS FROM Automobile").unwrap();
        let Statement::CreateClass(c) = stmt else {
            panic!()
        };
        assert_eq!(c.inherits, vec!["Automobile"]);
        assert!(c.attributes.is_empty());
    }

    #[test]
    fn nested_constructor_types() {
        let stmt = parse(
            "CREATE CLASS Fleet TUPLE ( cars SET (REFERENCE (Vehicle)), \
             log LIST (TUPLE (at Integer, note String)) )",
        )
        .unwrap();
        let Statement::CreateClass(c) = stmt else {
            panic!()
        };
        assert_eq!(
            c.attributes[0].1,
            TypeDescriptor::set_of(TypeDescriptor::reference("Vehicle"))
        );
        assert!(matches!(c.attributes[1].1, TypeDescriptor::List(_)));
    }

    #[test]
    fn new_object_from_paper() {
        let stmt = parse("new Employee <'Budak Arpinar', 'Computer Engineer', 1969>").unwrap();
        let Statement::NewObject { class, values } = stmt else {
            panic!()
        };
        assert_eq!(class, "Employee");
        assert_eq!(
            values,
            vec![
                Lit::Str("Budak Arpinar".into()),
                Lit::Str("Computer Engineer".into()),
                Lit::Int(1969)
            ]
        );
    }

    #[test]
    fn group_by_having_order_by() {
        let stmt = parse(
            "SELECT e.dept, COUNT(*) FROM Employee e WHERE e.age > 30 \
             GROUP BY e.dept HAVING COUNT(*) > 2 ORDER BY e.dept DESC",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].1, "DESC");
        assert!(matches!(s.projection[1], Expr::Agg { .. }));
    }

    #[test]
    fn method_calls_and_between() {
        let stmt = parse(
            "SELECT v FROM Vehicle v WHERE v.lbweight() > 2000 \
             AND v.weight BETWEEN 500 AND 1500",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Some(Expr::And(parts)) = s.where_clause else {
            panic!()
        };
        assert!(matches!(
            &parts[0],
            Expr::Compare { left, .. } if matches!(**left, Expr::MethodCall { .. })
        ));
        assert!(matches!(&parts[1], Expr::Between { .. }));
    }

    #[test]
    fn define_and_drop_method() {
        let stmt =
            parse("DEFINE METHOD Vehicle::lbweight() RETURNS Float AS 'return weight * 2.2075;'")
                .unwrap();
        let Statement::DefineMethod {
            class,
            name,
            params,
            returns,
            body,
        } = stmt
        else {
            panic!()
        };
        assert_eq!((class.as_str(), name.as_str()), ("Vehicle", "lbweight"));
        assert!(params.is_empty());
        assert_eq!(returns, TypeDescriptor::float());
        assert_eq!(body, "return weight * 2.2075;");
        assert!(matches!(
            parse("DROP METHOD Vehicle::lbweight").unwrap(),
            Statement::DropMethod { .. }
        ));
    }

    #[test]
    fn create_index_variants() {
        assert!(matches!(
            parse("CREATE INDEX ON Vehicle(weight)").unwrap(),
            Statement::CreateIndex {
                unique: false,
                hash: false,
                ..
            }
        ));
        assert!(matches!(
            parse("CREATE UNIQUE BTREE INDEX ON Vehicle(id)").unwrap(),
            Statement::CreateIndex {
                unique: true,
                hash: false,
                ..
            }
        ));
        assert!(matches!(
            parse("CREATE HASH INDEX ON Company(name)").unwrap(),
            Statement::CreateIndex { hash: true, .. }
        ));
    }

    #[test]
    fn delete_statement() {
        let stmt = parse("DELETE FROM Vehicle v WHERE v.id = 9").unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));
    }

    #[test]
    fn explain_wraps_select() {
        assert!(matches!(
            parse("EXPLAIN SELECT v FROM Vehicle v").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT v FROM").is_err());
        assert!(parse("CREATE CLASS").is_err());
        assert!(parse("SELECT v FROM Vehicle v WHERE v.x = ").is_err());
        assert!(parse("SELECT v FROM Vehicle v extra junk").is_err());
    }
}
