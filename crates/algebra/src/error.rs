//! Algebra error type.

use std::fmt;

/// Errors raised by algebra operators.
#[derive(Debug)]
pub enum AlgebraError {
    /// The operator is not applicable to the argument kind (per Tables 1–7).
    NotApplicable {
        operator: &'static str,
        detail: String,
    },
    /// Predicate/method evaluation failed.
    Exception(mood_funcman::Exception),
    /// Catalog or storage failure.
    Catalog(mood_catalog::CatalogError),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::NotApplicable { operator, detail } => {
                write!(f, "{operator} not applicable: {detail}")
            }
            AlgebraError::Exception(e) => write!(f, "exception during evaluation: {e}"),
            AlgebraError::Catalog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<mood_catalog::CatalogError> for AlgebraError {
    fn from(e: mood_catalog::CatalogError) -> Self {
        AlgebraError::Catalog(e)
    }
}

impl From<mood_funcman::Exception> for AlgebraError {
    fn from(e: mood_funcman::Exception) -> Self {
        AlgebraError::Exception(e)
    }
}

pub type Result<T> = std::result::Result<T, AlgebraError>;
