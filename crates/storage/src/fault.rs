//! Deterministic fault injection for crash testing.
//!
//! A [`FaultPlan`] scripts *when* an I/O operation fails and *how*: a clean
//! error, or a torn write that leaves half-new/half-old bytes behind before
//! erroring. Plans are deterministic — either an explicit operation number
//! or a seeded RNG decides — so a failing crash-simulation run can be
//! replayed exactly from its seed.
//!
//! Plans *latch*: once a fault fires, every subsequent operation fails too.
//! That models a crash, not a transient hiccup — after the machine dies,
//! no further I/O succeeds until the harness "reboots" by calling
//! [`FaultPlan::heal`]. The latch is what lets the harness drop the process
//! state, keep the disk and log bytes, and reopen against healed wrappers.
//!
//! Two modes deliberately break the latch rule:
//!
//! * [`FaultPlan::fail_n_then_heal`] is *transient*: the next `n`
//!   operations fail cleanly, then the device auto-heals. It models the
//!   hiccup a retrying caller ([`RetryDisk`](crate::disk::RetryDisk)) is
//!   designed to ride out, so it must not stay dead.
//! * [`FaultPlan::bit_flip_at`] is *silent* one-shot corruption: the
//!   `k`-th operation, if it is a page write, succeeds — but one seeded
//!   byte of the written image (always inside the checksummed
//!   [`PAGE_USABLE`](crate::page::PAGE_USABLE) region) is flipped on the
//!   way to the medium. The caller sees `Ok`; only the page checksum can
//!   tell. Byte position and XOR mask come from the plan's SplitMix64
//!   stream, so a given seed corrupts reproducibly.
//!
//! [`FaultyDisk`](crate::disk::FaultyDisk) and [`FaultyLog`] consult a
//! shared plan, so "the 7th I/O anywhere" counts disk and log operations
//! through one sequence.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::wal::LogStore;

/// What a fault plan tells an I/O wrapper to do for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Perform the operation normally.
    None,
    /// Fail the operation cleanly (no bytes reach the medium).
    Fail,
    /// Tear the write: persist a prefix of the new bytes, then fail.
    /// Operations that cannot tear (reads, creates, syncs) treat this
    /// as [`Fault::Fail`].
    Torn,
    /// Silently corrupt the write: flip one byte of the image, persist
    /// it, and report success. Operations that cannot corrupt (reads,
    /// creates, syncs, log appends) treat this as [`Fault::None`].
    BitFlip,
}

/// SplitMix64 — tiny, seedable, and good enough to scatter fault points.
/// Implemented inline so the crate keeps zero runtime dependencies.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Never fire.
    Disarmed,
    /// Fire on exactly operation number `k` (1-based).
    At(u64),
    /// Fire once every operation past `n` (the legacy fuse: `n` ops
    /// succeed, then the device is dead).
    After(u64),
    /// Transient: fire on the first `n` operations, then auto-heal.
    FirstN(u64),
    /// Fire each operation with probability `p` drawn from the seeded RNG.
    Random,
}

struct PlanState {
    /// Operations observed so far (monotonic; survives healing).
    ops: u64,
    /// Latched: a fault fired and has not been healed.
    tripped: bool,
    /// The operation number at which the plan first fired.
    fired_at: Option<u64>,
    trigger: Trigger,
    /// Kind of fault to inject when the trigger fires.
    kind: Fault,
    rng: SplitMix64,
    p: f64,
}

/// A scripted, seeded fault schedule shared by [`FaultyDisk`] and
/// [`FaultyLog`] wrappers. See the module docs for the latch semantics.
///
/// [`FaultyDisk`]: crate::disk::FaultyDisk
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    fn with(trigger: Trigger, kind: Fault, seed: u64, p: f64) -> Arc<Self> {
        Arc::new(FaultPlan {
            state: Mutex::new(PlanState {
                ops: 0,
                tripped: false,
                fired_at: None,
                trigger,
                kind,
                rng: SplitMix64(seed),
                p,
            }),
        })
    }

    /// A plan that never fires.
    pub fn disarmed() -> Arc<Self> {
        Self::with(Trigger::Disarmed, Fault::Fail, 0, 0.0)
    }

    /// Fail cleanly on exactly the `k`-th operation (1-based), then latch.
    pub fn fail_at(k: u64) -> Arc<Self> {
        Self::with(Trigger::At(k), Fault::Fail, 0, 0.0)
    }

    /// Tear the `k`-th operation (1-based) if it is a write, then latch.
    pub fn torn_at(k: u64) -> Arc<Self> {
        Self::with(Trigger::At(k), Fault::Torn, 0, 0.0)
    }

    /// Let `n` operations succeed, then fail every one after — the legacy
    /// `FaultyDisk` fuse. `u64::MAX` never fires.
    pub fn fail_after(n: u64) -> Arc<Self> {
        Self::with(Trigger::After(n), Fault::Fail, 0, 0.0)
    }

    /// Fire with probability `p` per operation, decided by a SplitMix64
    /// stream seeded with `seed`; an independent draw picks clean-fail vs
    /// torn each time. Deterministic for a given `(seed, p)` and operation
    /// sequence.
    pub fn probabilistic(seed: u64, p: f64) -> Arc<Self> {
        Self::with(Trigger::Random, Fault::Fail, seed, p)
    }

    /// Transient fault: the next `n` operations fail cleanly, then the
    /// device auto-heals (no latch). This is the hiccup a retrying caller
    /// is expected to ride out — see `RetryDisk`.
    pub fn fail_n_then_heal(n: u64) -> Arc<Self> {
        Self::with(Trigger::FirstN(n), Fault::Fail, 0, 0.0)
    }

    /// One-shot silent corruption: the `k`-th operation (1-based), if it
    /// is a page write, persists with one byte flipped — position and XOR
    /// mask drawn from `seed` — and *reports success*. The plan disarms
    /// after firing instead of latching; only a checksum can notice.
    pub fn bit_flip_at(k: u64, seed: u64) -> Arc<Self> {
        Self::with(Trigger::At(k), Fault::BitFlip, seed, 0.0)
    }

    /// Decide the fate of the next operation. Wrappers call this once per
    /// I/O; the plan counts the operation and latches when it fires.
    pub fn next(&self) -> Fault {
        let mut st = self.state.lock();
        st.ops += 1;
        if st.tripped {
            return Fault::Fail;
        }
        let fire = match st.trigger {
            Trigger::Disarmed => None,
            Trigger::At(k) => (st.ops == k).then_some(st.kind),
            Trigger::After(n) => (st.ops > n).then_some(st.kind),
            Trigger::FirstN(n) => (st.ops <= n).then_some(st.kind),
            Trigger::Random => {
                if st.rng.next_f64() < st.p {
                    // Second draw: clean failure or torn write.
                    Some(if st.rng.next() & 1 == 0 {
                        Fault::Fail
                    } else {
                        Fault::Torn
                    })
                } else {
                    None
                }
            }
        };
        match fire {
            Some(kind) => {
                if st.fired_at.is_none() {
                    st.fired_at = Some(st.ops);
                }
                // Transient (FirstN) faults self-limit; a silent bit flip
                // disarms after its single shot. Everything else models a
                // crash and latches until heal().
                match (st.trigger, kind) {
                    (Trigger::FirstN(_), _) => {}
                    (_, Fault::BitFlip) => st.trigger = Trigger::Disarmed,
                    _ => st.tripped = true,
                }
                kind
            }
            None => Fault::None,
        }
    }

    /// Seeded draw for [`Fault::BitFlip`]: a byte offset inside the
    /// checksummed region of a page and a non-zero XOR mask. Always lands
    /// in `[0, PAGE_USABLE)` so the corruption is guaranteed detectable —
    /// flipping trailer bytes would just invalidate the stamp itself.
    pub fn corrupt_byte(&self) -> (usize, u8) {
        let mut st = self.state.lock();
        let off = (st.rng.next() % crate::page::PAGE_USABLE as u64) as usize;
        let mask = (st.rng.next() % 255 + 1) as u8;
        (off, mask)
    }

    /// Disarm the plan and clear the latch: the "rebooted" device works.
    pub fn heal(&self) {
        let mut st = self.state.lock();
        st.tripped = false;
        st.trigger = Trigger::Disarmed;
    }

    /// Operations observed so far (for sizing `fail_at` sweeps).
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// The operation number at which the plan first fired, if it has.
    pub fn fired_at(&self) -> Option<u64> {
        self.state.lock().fired_at
    }
}

/// A [`LogStore`] wrapper that injects faults from a [`FaultPlan`].
/// A torn append persists a prefix of the record before erroring —
/// exactly the torn tail `Wal::recover` must stop at cleanly.
pub struct FaultyLog<L: LogStore> {
    inner: L,
    plan: Arc<FaultPlan>,
}

impl<L: LogStore> FaultyLog<L> {
    pub fn new(inner: L, plan: Arc<FaultPlan>) -> Self {
        FaultyLog { inner, plan }
    }

    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl<L: LogStore> LogStore for FaultyLog<L> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        match self.plan.next() {
            // Log records carry their own frame checksum; a silent page
            // bit-flip has no log analogue, so the append passes through.
            Fault::None | Fault::BitFlip => self.inner.append(bytes),
            Fault::Fail => Err(StorageError::Io("injected log append fault".into())),
            Fault::Torn => {
                let _ = self.inner.append(&bytes[..bytes.len() / 2]);
                Err(StorageError::Io("injected torn log append".into()))
            }
        }
    }
    fn force(&self) -> Result<()> {
        match self.plan.next() {
            Fault::None | Fault::BitFlip => self.inner.force(),
            _ => Err(StorageError::Io("injected log force fault".into())),
        }
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        match self.plan.next() {
            Fault::None | Fault::BitFlip => self.inner.read_all(),
            _ => Err(StorageError::Io("injected log read fault".into())),
        }
    }
    fn truncate(&self) -> Result<()> {
        match self.plan.next() {
            Fault::None | Fault::BitFlip => self.inner.truncate(),
            _ => Err(StorageError::Io("injected log truncate fault".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemLog;

    #[test]
    fn fail_at_latches() {
        let plan = FaultPlan::fail_at(3);
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.next(), Fault::Fail);
        // Latched: everything after the crash fails too.
        assert_eq!(plan.next(), Fault::Fail);
        assert_eq!(plan.fired_at(), Some(3));
        plan.heal();
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.ops(), 5);
    }

    #[test]
    fn fail_after_reproduces_the_legacy_fuse() {
        let plan = FaultPlan::fail_after(2);
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.next(), Fault::Fail);
        assert_eq!(plan.next(), Fault::Fail);
    }

    #[test]
    fn probabilistic_is_deterministic_per_seed() {
        let draw = |seed| {
            let plan = FaultPlan::probabilistic(seed, 0.2);
            (0..64).map(|_| plan.next()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42), "same seed, same schedule");
        assert_ne!(draw(42), draw(43), "different seeds diverge");
        // Latch: at p = 0.2 over 64 ops a fault fires with near certainty,
        // and everything after the first firing is Fail.
        let plan = FaultPlan::probabilistic(7, 0.5);
        let seq: Vec<_> = (0..64).map(|_| plan.next()).collect();
        let first = seq.iter().position(|f| *f != Fault::None).unwrap();
        assert!(seq[first + 1..].iter().all(|f| *f == Fault::Fail));
    }

    #[test]
    fn fail_n_then_heal_is_transient() {
        let plan = FaultPlan::fail_n_then_heal(3);
        assert_eq!(plan.next(), Fault::Fail);
        assert_eq!(plan.next(), Fault::Fail);
        assert_eq!(plan.next(), Fault::Fail);
        // Auto-heals: no latch, no heal() call needed.
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.fired_at(), Some(1));
    }

    #[test]
    fn bit_flip_fires_once_and_disarms() {
        let plan = FaultPlan::bit_flip_at(2, 99);
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.next(), Fault::BitFlip);
        // One shot: subsequent operations are clean, not latched failures.
        assert_eq!(plan.next(), Fault::None);
        assert_eq!(plan.fired_at(), Some(2));
        // The corruption draw is seeded and in-bounds.
        let (off, mask) = FaultPlan::bit_flip_at(1, 7).corrupt_byte();
        let (off2, mask2) = FaultPlan::bit_flip_at(1, 7).corrupt_byte();
        assert_eq!((off, mask), (off2, mask2), "same seed, same corruption");
        assert!(off < crate::page::PAGE_USABLE);
        assert_ne!(mask, 0);
    }

    #[test]
    fn torn_append_keeps_a_prefix() {
        let log = std::sync::Arc::new(MemLog::new());
        let faulty = FaultyLog::new(log.clone(), FaultPlan::torn_at(2));
        faulty.append(&[1, 2, 3, 4]).unwrap();
        assert!(faulty.append(&[5, 6, 7, 8]).is_err());
        // First record intact, second torn to its first half.
        assert_eq!(log.read_all().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }
}
