//! The MOOD query optimizer — Sections 7 and 8 end to end.
//!
//! Pipeline per AND-term (the DNF transform in [`crate::dnf`] produces the
//! terms; a final `UNION` combines them, Figure 7.1/7.2 order):
//!
//! 1. classify predicates into the ImmSelInfo / PathSelInfo / OtherSelInfo
//!    dictionaries (Tables 11–12) with selectivities and costs;
//! 2. decide index usage and residual predicate order for the immediate
//!    selections (§8.1, [`crate::atomic`]);
//! 3. order the path expressions by `F/(1−s)` (§8.2 / Algorithm 8.1,
//!    [`crate::path_order`]);
//! 4. order each path's implicit joins (§8.3 / Algorithm 8.2): greedy
//!    pairwise merging by `jc/(1−js)` for a cold chain; once a selective
//!    temporary heads the chain, traversal proceeds from it left-to-right
//!    with the per-join minimum-cost method (this is the behavior of the
//!    paper's Example 8.1, where P1 is evaluated by forward traversal from
//!    T1);
//! 5. emit the access plan in the paper's notation.

use mood_catalog::DatabaseStats;
use mood_cost::{
    atomic_selectivity, best_join_method, o_overlap, path_forward_cost, path_selectivity, seqcost,
    ClassInfo, Domain, IndexParams, JoinInputs, JoinMethod, PathHop, PathPredicate, PhysicalParams,
    Theta, DEFAULT_CPU_COST,
};
use mood_storage::ExecutionConfig;
use mood_storage::PhysicalParams as Disk;

use crate::atomic::{plan_atomic_selections, AtomicPredicate};
use crate::path_order::{order_paths, PathCost};
use crate::plan::{Plan, PlanSet};

/// A constant in a predicate (for selectivity and plan rendering).
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    Num(f64),
    Str(String),
    Bool(bool),
}

impl Const {
    pub fn render(&self) -> String {
        match self {
            Const::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x}")
                }
            }
            Const::Str(s) => format!("'{s}'"),
            Const::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Const::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// One predicate of an AND-term, rooted at the query's range variable.
#[derive(Debug, Clone, PartialEq)]
pub enum PredSpec {
    /// `v.A θ c` with `A` an atomic attribute of the root class.
    Immediate {
        attribute: String,
        theta: Theta,
        constant: Const,
    },
    /// `v.A1.A2…Am θ c` — a path expression (implicit joins).
    /// `terminal_var` preserves a user-written range variable for the
    /// terminal class (the binder's rewrite of explicit joins like
    /// `c.drivetrain.engine = v` keeps `v` addressable in projections).
    Path {
        path: Vec<String>,
        theta: Theta,
        constant: Const,
        terminal_var: Option<String>,
    },
    /// Anything else (method calls, complex predicates): evaluated last,
    /// selectivity unknown (the paper stores these in OtherSelInfo).
    Other { text: String },
}

impl crate::dnf::Negate for PredSpec {
    fn negate(&self) -> Self {
        fn flip(t: Theta) -> Theta {
            match t {
                Theta::Eq => Theta::Ne,
                Theta::Ne => Theta::Eq,
                Theta::Lt => Theta::Ge,
                Theta::Ge => Theta::Lt,
                Theta::Gt => Theta::Le,
                Theta::Le => Theta::Gt,
            }
        }
        match self {
            PredSpec::Immediate {
                attribute,
                theta,
                constant,
            } => PredSpec::Immediate {
                attribute: attribute.clone(),
                theta: flip(*theta),
                constant: constant.clone(),
            },
            PredSpec::Path {
                path,
                theta,
                constant,
                terminal_var,
            } => PredSpec::Path {
                path: path.clone(),
                theta: flip(*theta),
                constant: constant.clone(),
                terminal_var: terminal_var.clone(),
            },
            PredSpec::Other { text } => PredSpec::Other {
                text: format!("NOT ({text})"),
            },
        }
    }
}

/// The optimizer's query description (the SQL binder lowers its AST to
/// this; tests construct it directly).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub root_var: String,
    pub root_class: String,
    /// `FROM EVERY C` (include subclasses).
    pub every: bool,
    /// The `-` operator's exclusions.
    pub minus: Vec<String>,
    /// DNF: OR of AND-terms.
    pub terms: Vec<Vec<PredSpec>>,
    pub projection: Vec<String>,
    pub order_by: Vec<String>,
    pub group_by: Vec<String>,
    pub having: Option<String>,
}

impl QuerySpec {
    pub fn new(root_var: &str, root_class: &str) -> QuerySpec {
        QuerySpec {
            root_var: root_var.to_string(),
            root_class: root_class.to_string(),
            every: false,
            minus: Vec::new(),
            terms: vec![Vec::new()],
            projection: Vec::new(),
            order_by: Vec::new(),
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// A row of the ImmSelInfo dictionary (Table 11).
#[derive(Debug, Clone)]
pub struct ImmSelRow {
    pub range_var: String,
    pub predicate: String,
    pub selectivity: f64,
    pub indexed_cost: Option<f64>,
    pub sequential_cost: f64,
    /// "Access Type" column: `Indexed` or `Sequential`.
    pub indexed_access: bool,
}

/// A row of the PathSelInfo dictionary (Table 12 / Table 16).
#[derive(Debug, Clone)]
pub struct PathSelRow {
    pub range_var: String,
    pub predicate: String,
    pub selectivity: f64,
    pub forward_cost: f64,
    /// The `cost/(1−f_s)` ranking column of Table 16.
    pub rank: f64,
}

/// A row of the OtherSelInfo dictionary.
#[derive(Debug, Clone)]
pub struct OtherSelRow {
    pub range_var: String,
    pub predicate: String,
    /// "The main problem for this type is that it is not so easy to
    /// calculate the selectivity": a fixed default is used.
    pub selectivity: f64,
    pub sequential_cost: f64,
}

/// Optimization output for one AND-term.
#[derive(Debug, Clone)]
pub struct TermPlan {
    pub imm_sel_info: Vec<ImmSelRow>,
    pub path_sel_info: Vec<PathSelRow>,
    pub other_sel_info: Vec<OtherSelRow>,
    pub plan: PlanSet,
}

/// The complete optimization result.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    pub terms: Vec<TermPlan>,
    /// The final plan (UNION of terms, then PROJECT/PARTITION/SORT per
    /// Figure 7.1/7.2).
    pub root: Plan,
    pub estimated_cost: f64,
}

/// Default selectivity for OtherSelInfo predicates.
const OTHER_SELECTIVITY: f64 = 0.5;

/// Optimizer configuration.
///
/// `execution` does not influence plan choice — parallel operators produce
/// identical results with identical page-access totals, so the §5/§6 cost
/// formulas apply unchanged. It rides along here because the executor reads
/// its operator settings from the same config the optimizer uses.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    pub params: PhysicalParams,
    pub cpu_cost: f64,
    pub execution: ExecutionConfig,
    /// Lower WHERE predicates and projections into flat register programs
    /// (the Function Manager's compile-once discipline applied to queries).
    /// Plan choice is unaffected; only the evaluation strategy changes.
    pub compiled_predicates: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            params: Disk::salzberg_1988(),
            cpu_cost: DEFAULT_CPU_COST,
            execution: ExecutionConfig::default(),
            compiled_predicates: true,
        }
    }
}

impl OptimizerConfig {
    pub fn paper() -> Self {
        OptimizerConfig {
            params: Disk::paper_calibrated(),
            cpu_cost: DEFAULT_CPU_COST,
            execution: ExecutionConfig::default(),
            compiled_predicates: true,
        }
    }

    /// The same config with the given operator parallelism.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.execution = ExecutionConfig::with_parallelism(parallelism);
        self
    }

    /// The same config with compiled predicate/projection evaluation toggled.
    pub fn with_compiled_predicates(mut self, on: bool) -> Self {
        self.compiled_predicates = on;
        self
    }
}

// ---------------------------------------------------------------------
// Statistics access helpers
// ---------------------------------------------------------------------

pub(crate) struct StatsView<'a> {
    pub(crate) stats: &'a DatabaseStats,
}

impl<'a> StatsView<'a> {
    pub(crate) fn class_info(&self, class: &str) -> ClassInfo {
        match self.stats.class(class) {
            Some(c) => ClassInfo {
                cardinality: c.cardinality as f64,
                nbpages: c.nbpages as f64,
            },
            // Unknown classes get a small default so optimization proceeds.
            None => ClassInfo {
                cardinality: 1_000.0,
                nbpages: 100.0,
            },
        }
    }

    /// The hop (fan/totref/totlinks), its target class, and hitprb for a
    /// reference attribute.
    pub(crate) fn hop(&self, class: &str, attr: &str) -> Option<(PathHop, String, f64)> {
        let r = self.stats.reference(class, attr)?;
        let totlinks = self.stats.totlinks(class, attr)?;
        let hitprb = self.stats.hitprb(class, attr).unwrap_or(1.0);
        Some((
            PathHop {
                fan: r.fan,
                totref: r.totref as f64,
                totlinks,
            },
            r.target.clone(),
            hitprb,
        ))
    }

    pub(crate) fn domain(&self, class: &str, attr: &str) -> Domain {
        match self.stats.attr(class, attr) {
            Some(a) => Domain {
                dist: a.dist as f64,
                max: a.max,
                min: a.min,
            },
            None => Domain {
                dist: 10.0,
                max: None,
                min: None,
            },
        }
    }

    pub(crate) fn index(&self, class: &str, attr: &str) -> Option<IndexParams> {
        self.stats.index(class, attr).map(IndexParams::from_stats)
    }
}

/// A short range-variable name for an intermediate hop, following the
/// paper's convention (`v.drivetrain` → `d`, `d.engine` → `e`,
/// `v.company` → `c`): the first letter of the *attribute* traversed.
pub fn short_var(attribute: &str, taken: &[String]) -> String {
    let base = attribute
        .chars()
        .next()
        .map(|ch| ch.to_lowercase().to_string())
        .unwrap_or_else(|| "x".to_string());
    if !taken.contains(&base) {
        return base;
    }
    let mut n = 2;
    loop {
        let cand = format!("{base}{n}");
        if !taken.contains(&cand) {
            return cand;
        }
        n += 1;
    }
}

// ---------------------------------------------------------------------
// Algorithm 8.2 machinery
// ---------------------------------------------------------------------

/// A node of the join chain (a class or a merged temporary).
#[derive(Debug, Clone)]
struct ChainNode {
    /// Head class: the referencing side seen by the left neighbor.
    head_class: String,
    head_var: String,
    /// Expected surviving head-class objects (selections/merges applied).
    selected: f64,
    plan: Plan,
    in_memory: bool,
    accessed: bool,
}

/// The edge between chain nodes i and i+1: attribute of node i's *tail*
/// class referencing node i+1's head class. For the single-path chains the
/// optimizer builds, every node's tail equals its rightmost original class;
/// we track the tail explicitly on the edge's left variable.
#[derive(Debug, Clone)]
struct ChainEdge {
    /// The referencing class (C_i) and its range variable.
    from_class: String,
    from_var: String,
    attribute: String,
    hop: PathHop,
    hitprb: f64,
}

struct ChainState<'a> {
    nodes: Vec<ChainNode>,
    edges: Vec<ChainEdge>, // edges[i] joins nodes[i] → nodes[i+1]
    view: &'a StatsView<'a>,
    cfg: &'a OptimizerConfig,
}

impl ChainState<'_> {
    /// `jc` and the chosen method for edge `i` (Algorithm 8.2's "minimum
    /// cost join technique among the four join algorithms").
    fn edge_cost(&self, i: usize) -> (JoinMethod, f64) {
        let left = &self.nodes[i];
        let right = &self.nodes[i + 1];
        let edge = &self.edges[i];
        let c = self.view.class_info(&edge.from_class);
        let d = self.view.class_info(&right.head_class);
        let j = JoinInputs {
            // Pairwise costs use full extents for stored nodes (selections
            // have not been *executed* at estimation time — they enter
            // through js); in-memory temporaries use their surviving count.
            k_c: if left.in_memory {
                left.selected
            } else {
                c.cardinality
            },
            k_d: if right.in_memory {
                right.selected
            } else {
                d.cardinality
            },
            c,
            d,
            fan: edge.hop.fan,
            totref: edge.hop.totref,
            index: self.view.index(&edge.from_class, &edge.attribute),
            d_already_accessed: right.accessed,
            cpu_cost: self.cfg.cpu_cost,
            c_in_memory: left.in_memory,
            d_in_memory: right.in_memory,
        };
        best_join_method(&self.cfg.params, &j)
    }

    /// `js` for edge `i`: the fraction of the left node's head objects
    /// surviving the join, `o(totref, fref(hop, 1), selected_D · hitprb)`.
    fn edge_selectivity(&self, i: usize) -> f64 {
        let right = &self.nodes[i + 1];
        let edge = &self.edges[i];
        let x = mood_cost::fref(std::slice::from_ref(&edge.hop), 1.0);
        o_overlap(edge.hop.totref, x, right.selected * edge.hitprb)
    }

    fn rank(&self, i: usize) -> f64 {
        let (_, jc) = self.edge_cost(i);
        let js = self.edge_selectivity(i);
        if js >= 1.0 {
            f64::INFINITY
        } else {
            jc / (1.0 - js)
        }
    }

    /// Merge edge `i` into a single node, returning the join cost spent.
    fn merge(&mut self, i: usize) -> f64 {
        let (method, jc) = self.edge_cost(i);
        let js = self.edge_selectivity(i);
        let left = self.nodes[i].clone();
        let right = self.nodes[i + 1].clone();
        let edge = self.edges[i].clone();
        let condition = format!(
            "{}.{} = {}.self",
            edge.from_var, edge.attribute, right.head_var
        );
        let merged = ChainNode {
            head_class: left.head_class,
            head_var: left.head_var,
            selected: left.selected * js,
            plan: Plan::join(left.plan, right.plan, method, condition),
            in_memory: true,
            accessed: true,
        };
        self.nodes[i] = merged;
        self.nodes.remove(i + 1);
        self.edges.remove(i);
        jc
    }

    /// Algorithm 8.2: greedily merge the minimum-rank pair until one node
    /// remains. Returns the final node and the summed join cost.
    fn run_greedy(mut self) -> (ChainNode, f64) {
        let mut total = 0.0;
        while self.nodes.len() > 1 {
            let best = (0..self.edges.len())
                .min_by(|&a, &b| {
                    self.rank(a)
                        .partial_cmp(&self.rank(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("edges remain while nodes > 1");
            total += self.merge(best);
        }
        (self.nodes.pop().expect("one node remains"), total)
    }

    /// Left-to-right traversal from an in-memory head (the Example 8.1
    /// pattern for paths entered from a selective temporary).
    fn run_left_to_right(mut self) -> (ChainNode, f64) {
        let mut total = 0.0;
        while self.nodes.len() > 1 {
            total += self.merge(0);
        }
        (self.nodes.pop().expect("one node remains"), total)
    }
}

// ---------------------------------------------------------------------
// The optimizer proper
// ---------------------------------------------------------------------

/// Optimize a query against the statistics.
pub fn optimize(spec: &QuerySpec, stats: &DatabaseStats, cfg: &OptimizerConfig) -> OptimizedQuery {
    let view = StatsView { stats };
    let mut term_plans = Vec::new();
    let mut total_cost = 0.0;
    for term in &spec.terms {
        let tp = optimize_term(spec, term, &view, cfg);
        total_cost += tp.plan.estimated_cost;
        term_plans.push(tp);
    }
    // UNION of the AND-term subplans (Figure 7.2: UNION is outermost in
    // the WHERE processing), then GROUP BY/HAVING, projection, ORDER BY
    // (Figure 7.1 clause order).
    let mut root = if term_plans.len() == 1 {
        term_plans[0].plan.root.clone()
    } else {
        Plan::Union {
            inputs: term_plans.iter().map(|t| t.plan.root.clone()).collect(),
        }
    };
    if !spec.group_by.is_empty() {
        root = Plan::Partition {
            input: Box::new(root),
            attributes: spec.group_by.clone(),
            having: spec.having.clone(),
        };
    }
    if !spec.projection.is_empty() {
        root = Plan::Project {
            input: Box::new(root),
            attributes: spec.projection.clone(),
        };
    }
    if !spec.order_by.is_empty() {
        root = Plan::Sort {
            input: Box::new(root),
            attributes: spec.order_by.clone(),
        };
    }
    OptimizedQuery {
        terms: term_plans,
        root,
        estimated_cost: total_cost,
    }
}

fn render_path_pred(var: &str, path: &[String], theta: Theta, c: &Const) -> String {
    format!("{var}.{} {} {}", path.join("."), theta.symbol(), c.render())
}

fn optimize_term(
    spec: &QuerySpec,
    term: &[PredSpec],
    view: &StatsView<'_>,
    cfg: &OptimizerConfig,
) -> TermPlan {
    let root_class = &spec.root_class;
    let root_info = view.class_info(root_class);

    // ---- classify ----
    let mut imm: Vec<(&PredSpec, AtomicPredicate)> = Vec::new();
    let mut paths: Vec<&PredSpec> = Vec::new();
    let mut others: Vec<&PredSpec> = Vec::new();
    for p in term {
        match p {
            PredSpec::Immediate {
                attribute,
                theta,
                constant,
            } => {
                let dom = view.domain(root_class, attribute);
                let sel = atomic_selectivity(*theta, constant.as_num(), &dom);
                imm.push((
                    p,
                    AtomicPredicate {
                        text: format!(
                            "{}.{attribute} {} {}",
                            spec.root_var,
                            theta.symbol(),
                            constant.render()
                        ),
                        selectivity: sel,
                        theta: *theta,
                        index: view.index(root_class, attribute),
                    },
                ));
            }
            PredSpec::Path { .. } => paths.push(p),
            PredSpec::Other { .. } => others.push(p),
        }
    }

    // ---- §8.1: immediate selections ----
    let atomic_preds: Vec<AtomicPredicate> = imm.iter().map(|(_, a)| a.clone()).collect();
    let atomic_plan = plan_atomic_selections(
        &cfg.params,
        &atomic_preds,
        root_info.cardinality,
        root_info.nbpages,
    );
    let seq = seqcost(&cfg.params, root_info.nbpages);
    let imm_rows: Vec<ImmSelRow> = atomic_preds
        .iter()
        .enumerate()
        .map(|(i, a)| ImmSelRow {
            range_var: spec.root_var.clone(),
            predicate: a.text.clone(),
            selectivity: a.selectivity,
            indexed_cost: crate::atomic::indexed_access_cost(&cfg.params, a),
            sequential_cost: seq,
            indexed_access: atomic_plan.indexed.contains(&i),
        })
        .collect();

    let mut cost_so_far = 0.0;
    let imm_selectivity: f64 = atomic_preds.iter().map(|a| a.selectivity).product();
    // Base access plan for the root variable.
    let mut base = Plan::bind(root_class, &spec.root_var);
    let mut root_in_memory = false;
    if !atomic_preds.is_empty() {
        cost_so_far += atomic_plan.access_cost;
        root_in_memory = true;
        if !atomic_plan.indexed.is_empty() {
            let texts: Vec<String> = atomic_plan
                .indexed
                .iter()
                .map(|&i| atomic_preds[i].text.clone())
                .collect();
            base = Plan::IndSel {
                class: root_class.clone(),
                var: spec.root_var.clone(),
                index_kind: "BTREE".to_string(),
                predicate: texts.join(" AND "),
            };
        }
        if !atomic_plan.residual.is_empty() {
            let texts: Vec<String> = atomic_plan
                .residual
                .iter()
                .map(|&i| atomic_preds[i].text.clone())
                .collect();
            base = Plan::select(base, texts.join(" AND "));
        }
    }

    // ---- §4.1 + Algorithm 8.1: path expressions ----
    struct PathData<'p> {
        spec: &'p PredSpec,
        text: String,
        hops: Vec<(PathHop, String, f64, String)>, // hop, target class, hitprb, attr
        selectivity: f64,
        forward_cost: f64,
    }
    let mut path_data: Vec<PathData<'_>> = Vec::new();
    for p in &paths {
        let PredSpec::Path {
            path,
            theta,
            constant,
            ..
        } = p
        else {
            unreachable!()
        };
        let mut hops = Vec::new();
        let mut cur = root_class.clone();
        let mut classes = vec![view.class_info(&cur)];
        for attr in &path[..path.len() - 1] {
            match view.hop(&cur, attr) {
                Some((hop, target, hitprb)) => {
                    hops.push((hop, target.clone(), hitprb, attr.clone()));
                    classes.push(view.class_info(&target));
                    cur = target;
                }
                None => break,
            }
        }
        let terminal_attr = path.last().expect("non-empty path");
        let dom = view.domain(&cur, terminal_attr);
        let term_sel = atomic_selectivity(*theta, constant.as_num(), &dom);
        let pp = PathPredicate {
            hops: hops.iter().map(|(h, _, _, _)| *h).collect(),
            terminal_cardinality: view.class_info(&cur).cardinality,
            terminal_selectivity: term_sel,
            hitprb_last: hops.last().map(|(_, _, h, _)| *h).unwrap_or(1.0),
        };
        let selectivity = path_selectivity(&pp);
        let forward_cost =
            path_forward_cost(&cfg.params, &classes, &pp.hops, root_info.cardinality);
        path_data.push(PathData {
            spec: p,
            text: render_path_pred(&spec.root_var, path, *theta, constant),
            hops,
            selectivity,
            forward_cost,
        });
    }
    let order = order_paths(
        &path_data
            .iter()
            .map(|d| PathCost {
                cost: d.forward_cost,
                selectivity: d.selectivity,
            })
            .collect::<Vec<_>>(),
    );
    let path_rows: Vec<PathSelRow> = order
        .iter()
        .map(|&i| {
            let d = &path_data[i];
            let pc = PathCost {
                cost: d.forward_cost,
                selectivity: d.selectivity,
            };
            PathSelRow {
                range_var: spec.root_var.clone(),
                predicate: d.text.clone(),
                selectivity: d.selectivity,
                forward_cost: d.forward_cost,
                rank: pc.rank(),
            }
        })
        .collect();

    // ---- Algorithm 8.2 per path, in 8.1 order ----
    let mut temps: Vec<(String, Plan)> = Vec::new();
    let mut current = ChainNode {
        head_class: root_class.clone(),
        head_var: spec.root_var.clone(),
        selected: root_info.cardinality * imm_selectivity,
        plan: base,
        in_memory: root_in_memory,
        accessed: root_in_memory,
    };
    let mut taken_vars = vec![spec.root_var.clone()];
    for (step, &pi) in order.iter().enumerate() {
        let d = &path_data[pi];
        let PredSpec::Path {
            path,
            theta,
            constant,
            terminal_var,
        } = d.spec
        else {
            unreachable!()
        };
        // A *path index* (access-support relation) covering the whole path
        // satisfies the predicate with one index probe — usable when the
        // chain still starts from the stored root extent (the index maps
        // terminal values to root OIDs).
        if !current.in_memory {
            if let Some(ix) = view.stats.index(root_class, &path.join(".")) {
                let ix = IndexParams::from_stats(ix);
                let indexed_cost = match theta {
                    Theta::Eq => mood_cost::indcost(&cfg.params, &ix, 1.0),
                    Theta::Ne => f64::INFINITY,
                    _ => mood_cost::rngxcost(&cfg.params, &ix, d.selectivity),
                };
                let fetch = mood_cost::rndcost(&cfg.params, root_info.cardinality * d.selectivity);
                if indexed_cost + fetch < d.forward_cost {
                    cost_so_far += indexed_cost + fetch;
                    current = ChainNode {
                        head_class: root_class.clone(),
                        head_var: current.head_var.clone(),
                        selected: current.selected * d.selectivity,
                        plan: Plan::IndSel {
                            class: root_class.clone(),
                            var: spec.root_var.clone(),
                            index_kind: "PATH_INDEX".to_string(),
                            predicate: d.text.clone(),
                        },
                        in_memory: true,
                        accessed: true,
                    };
                    if step + 1 < order.len() {
                        let name = format!("T{}", temps.len() + 1);
                        temps.push((name.clone(), current.plan.clone()));
                        current.plan = Plan::temp(&name);
                    }
                    continue;
                }
            }
        }
        // Build the chain: current node, then one node per hop target.
        let mut nodes = vec![current.clone()];
        let mut edges: Vec<ChainEdge> = Vec::new();
        let mut from_class = current.head_class.clone();
        let mut from_var = current.head_var.clone();
        for (i, (hop, target, hitprb, attr)) in d.hops.iter().enumerate() {
            let is_last_hop = i + 1 == d.hops.len();
            let var = match (is_last_hop, terminal_var) {
                (true, Some(v)) if !taken_vars.contains(v) => v.clone(),
                _ => short_var(attr, &taken_vars),
            };
            taken_vars.push(var.clone());
            let info = view.class_info(target);
            let is_last = i + 1 == d.hops.len();
            let (plan, selected) = if is_last {
                let dom = view.domain(target, path.last().expect("non-empty"));
                let sel = atomic_selectivity(*theta, constant.as_num(), &dom);
                (
                    Plan::select(
                        Plan::bind(target, &var),
                        format!(
                            "{var}.{} {} {}",
                            path.last().expect("non-empty"),
                            theta.symbol(),
                            constant.render()
                        ),
                    ),
                    info.cardinality * sel,
                )
            } else {
                (Plan::bind(target, &var), info.cardinality)
            };
            nodes.push(ChainNode {
                head_class: target.clone(),
                head_var: var.clone(),
                selected,
                plan,
                in_memory: false,
                accessed: false,
            });
            edges.push(ChainEdge {
                from_class: from_class.clone(),
                from_var: from_var.clone(),
                attribute: attr.clone(),
                hop: *hop,
                hitprb: *hitprb,
            });
            from_class = target.clone();
            from_var = var;
        }
        if edges.is_empty() {
            continue; // unresolvable path: handled as residual by executor
        }
        let head_in_memory = nodes[0].in_memory;
        let chain = ChainState {
            nodes,
            edges,
            view,
            cfg,
        };
        let (result, jc) = if head_in_memory {
            chain.run_left_to_right()
        } else {
            chain.run_greedy()
        };
        cost_so_far += jc;
        current = result;
        // Name the subplan T1, T2, … after each path except the last, as
        // the paper does.
        if step + 1 < order.len() {
            let name = format!("T{}", temps.len() + 1);
            temps.push((name.clone(), current.plan.clone()));
            current.plan = Plan::temp(&name);
        }
    }

    // ---- other selections last ----
    let mut other_rows = Vec::new();
    let mut plan = current.plan;
    for o in &others {
        let PredSpec::Other { text } = o else {
            unreachable!()
        };
        other_rows.push(OtherSelRow {
            range_var: spec.root_var.clone(),
            predicate: text.clone(),
            selectivity: OTHER_SELECTIVITY,
            sequential_cost: seq,
        });
        plan = Plan::select(plan, text.clone());
    }

    TermPlan {
        imm_sel_info: imm_rows,
        path_sel_info: path_rows,
        other_sel_info: other_rows,
        plan: PlanSet {
            temps,
            root: plan,
            estimated_cost: cost_so_far,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OptimizerConfig {
        OptimizerConfig::paper()
    }

    /// Example 8.1's query spec:
    /// Select v From Vehicle v
    /// where v.company.name = 'BMW' and v.drivetrain.engine.cylinders = 2
    fn example_8_1() -> QuerySpec {
        let mut q = QuerySpec::new("v", "Vehicle");
        q.projection = vec!["v".to_string()];
        q.terms = vec![vec![
            PredSpec::Path {
                path: vec!["company".into(), "name".into()],
                theta: Theta::Eq,
                constant: Const::Str("BMW".into()),
                terminal_var: None,
            },
            PredSpec::Path {
                path: vec!["drivetrain".into(), "engine".into(), "cylinders".into()],
                theta: Theta::Eq,
                constant: Const::Num(2.0),
                terminal_var: None,
            },
        ]];
        q
    }

    /// Example 8.2: Select v From Vehicle v
    /// Where v.drivetrain.engine.cylinders = 2
    fn example_8_2() -> QuerySpec {
        let mut q = QuerySpec::new("v", "Vehicle");
        q.projection = vec!["v".to_string()];
        q.terms = vec![vec![PredSpec::Path {
            path: vec!["drivetrain".into(), "engine".into(), "cylinders".into()],
            theta: Theta::Eq,
            constant: Const::Num(2.0),
            terminal_var: None,
        }]];
        q
    }

    #[test]
    fn table_16_path_sel_info_reproduced() {
        let stats = DatabaseStats::paper_example();
        let out = optimize(&example_8_1(), &stats, &cfg());
        let rows = &out.terms[0].path_sel_info;
        assert_eq!(rows.len(), 2);
        // Ordered P2 (company.name) first.
        assert!(rows[0].predicate.contains("company.name"), "{:?}", rows[0]);
        assert!(rows[1].predicate.contains("drivetrain.engine.cylinders"));
        // P1 row: selectivity 6.25e-2, forward cost ≈771.8 (within 1%),
        // rank ≈ 823.28.
        let p1 = &rows[1];
        assert!(
            (p1.selectivity - 6.25e-2).abs() < 2e-3,
            "{}",
            p1.selectivity
        );
        assert!(
            (p1.forward_cost - 771.825).abs() / 771.825 < 0.01,
            "{}",
            p1.forward_cost
        );
        assert!((p1.rank - 823.28).abs() / 823.28 < 0.01, "{}", p1.rank);
        // P2 row: formula selectivity 5.0e-6 (the paper prints 5.00e-5 —
        // its own formula omits hitprb there; see EXPERIMENTS.md), forward
        // cost exactly 520.825 under the calibrated disk.
        let p2 = &rows[0];
        assert!((p2.selectivity - 5.0e-6).abs() < 1e-7, "{}", p2.selectivity);
        assert!(
            (p2.forward_cost - 520.825).abs() < 1e-6,
            "{}",
            p2.forward_cost
        );
        assert!((p2.rank - 520.825).abs() < 0.01, "{}", p2.rank);
    }

    #[test]
    fn example_8_1_plan_shape_matches_paper() {
        let stats = DatabaseStats::paper_example();
        let out = optimize(&example_8_1(), &stats, &cfg());
        let plan = &out.terms[0].plan;
        // T1 : JOIN(BIND(Vehicle, v), SELECT(BIND(Company, c),
        //      c.name = 'BMW'), HASH_PARTITION, v.company = c.self)
        assert_eq!(plan.temps.len(), 1);
        let (name, t1) = &plan.temps[0];
        assert_eq!(name, "T1");
        let t1s = t1.to_string();
        assert!(t1s.contains("BIND(Vehicle, v)"), "{t1s}");
        assert!(
            t1s.contains("SELECT(BIND(Company, c), c.name = 'BMW')"),
            "{t1s}"
        );
        assert!(t1s.contains("HASH_PARTITION, v.company = c.self"), "{t1s}");
        // Final: JOIN(JOIN(T1, BIND(VehicleDriveTrain, d), FORWARD_TRAVERSAL,
        //   v.drivetrain = d.self), SELECT(BIND(VehicleEngine, e),
        //   e.cylinders = 2), FORWARD_TRAVERSAL, d.engine = e.self)
        let root = out.terms[0].plan.root.to_string();
        assert!(root.contains("T1"), "{root}");
        assert!(root.contains("BIND(VehicleDriveTrain, d)"), "{root}");
        assert!(
            root.contains("FORWARD_TRAVERSAL, v.drivetrain = d.self"),
            "{root}"
        );
        assert!(
            root.contains("SELECT(BIND(VehicleEngine, e), e.cylinders = 2)"),
            "{root}"
        );
        assert!(
            root.contains("FORWARD_TRAVERSAL, d.engine = e.self"),
            "{root}"
        );
        assert_eq!(
            out.terms[0].plan.root.join_methods(),
            vec![JoinMethod::ForwardTraversal, JoinMethod::ForwardTraversal]
        );
    }

    #[test]
    fn example_8_2_plan_shape_matches_paper() {
        let stats = DatabaseStats::paper_example();
        let out = optimize(&example_8_2(), &stats, &cfg());
        let plan = &out.terms[0].plan;
        assert!(plan.temps.is_empty(), "single path inlines its joins");
        let root = plan.root.to_string();
        // T1 = JOIN(BIND(VehicleDriveTrain, d), SELECT(BIND(VehicleEngine,
        // e), e.cylinders = 2), HASH_PARTITION, d.engine = e.self);
        // final = JOIN(BIND(Vehicle, v), T1, HASH_PARTITION,
        // v.drivetrain = d.self).
        assert!(root.contains("BIND(VehicleDriveTrain, d)"), "{root}");
        assert!(
            root.contains("SELECT(BIND(VehicleEngine, e), e.cylinders = 2)"),
            "{root}"
        );
        assert!(root.contains("HASH_PARTITION, d.engine = e.self"), "{root}");
        assert!(root.contains("BIND(Vehicle, v)"), "{root}");
        assert!(
            root.contains("HASH_PARTITION, v.drivetrain = d.self"),
            "{root}"
        );
        assert_eq!(
            plan.root.join_methods(),
            vec![JoinMethod::HashPartition, JoinMethod::HashPartition],
            "both joins hash-partition, as in the paper's final plan"
        );
        // The greedy merged (d, e) first: the (d ⋈ e) join is the *right*
        // child of the outer join.
        let crate::plan::Plan::Project { input, .. } = &out.root else {
            panic!()
        };
        let crate::plan::Plan::Join { left, right, .. } = &**input else {
            panic!()
        };
        assert!(matches!(&**left, crate::plan::Plan::Bind { class, .. } if class == "Vehicle"));
        assert!(matches!(&**right, crate::plan::Plan::Join { .. }));
    }

    #[test]
    fn immediate_selection_with_index_uses_indsel() {
        let mut stats = DatabaseStats::paper_example();
        // A near-unique attribute: 10 survivors out of 10000 — a few
        // random fetches clearly beat scanning 5000 pages.
        stats.set_attr(
            "VehicleEngine",
            "serial",
            mood_catalog::AttrStats {
                notnull: 1.0,
                dist: 1_000,
                max: Some(1_000.0),
                min: Some(1.0),
            },
        );
        stats.set_index(
            "VehicleEngine",
            "serial",
            mood_storage::BTreeStats {
                levels: 3,
                leaves: 500,
                keysize: 9,
                unique: false,
                entries: 10_000,
                order: 100,
            },
        );
        let mut q = QuerySpec::new("e", "VehicleEngine");
        q.terms = vec![vec![PredSpec::Immediate {
            attribute: "serial".into(),
            theta: Theta::Eq,
            constant: Const::Num(42.0),
        }]];
        let out = optimize(&q, &stats, &cfg());
        let row = &out.terms[0].imm_sel_info[0];
        assert!((row.selectivity - 1.0 / 1_000.0).abs() < 1e-9);
        assert!(row.indexed_cost.is_some());
        assert!(
            row.indexed_access,
            "selectivity 1e-3 over 5000 pages: index wins"
        );
        let root = out.terms[0].plan.root.to_string();
        assert!(root.contains("INDSEL(VehicleEngine, e"), "{root}");
        // And the unselective cylinders predicate on the same class would
        // NOT use an index even if one existed: the crossover the §8.1
        // inequality encodes (checked in the bench X2).
    }

    #[test]
    fn unindexed_immediate_selection_scans() {
        let stats = DatabaseStats::paper_example();
        let mut q = QuerySpec::new("e", "VehicleEngine");
        q.terms = vec![vec![PredSpec::Immediate {
            attribute: "cylinders".into(),
            theta: Theta::Gt,
            constant: Const::Num(4.0),
        }]];
        let out = optimize(&q, &stats, &cfg());
        let row = &out.terms[0].imm_sel_info[0];
        assert!(row.indexed_cost.is_none());
        assert!(!row.indexed_access);
        let root = out.terms[0].plan.root.to_string();
        assert!(
            root.contains("SELECT(BIND(VehicleEngine, e), e.cylinders > 4)"),
            "{root}"
        );
    }

    #[test]
    fn multiple_terms_union() {
        let stats = DatabaseStats::paper_example();
        let mut q = QuerySpec::new("e", "VehicleEngine");
        q.terms = vec![
            vec![PredSpec::Immediate {
                attribute: "cylinders".into(),
                theta: Theta::Eq,
                constant: Const::Num(2.0),
            }],
            vec![PredSpec::Immediate {
                attribute: "cylinders".into(),
                theta: Theta::Eq,
                constant: Const::Num(8.0),
            }],
        ];
        let out = optimize(&q, &stats, &cfg());
        assert_eq!(out.terms.len(), 2);
        assert!(out.root.to_string().contains("UNION("));
    }

    #[test]
    fn other_predicates_applied_last() {
        let stats = DatabaseStats::paper_example();
        let mut q = QuerySpec::new("v", "Vehicle");
        q.terms = vec![vec![
            PredSpec::Other {
                text: "v.lbweight() > 3000".into(),
            },
            PredSpec::Path {
                path: vec!["company".into(), "name".into()],
                theta: Theta::Eq,
                constant: Const::Str("BMW".into()),
                terminal_var: None,
            },
        ]];
        let out = optimize(&q, &stats, &cfg());
        assert_eq!(out.terms[0].other_sel_info.len(), 1);
        let root = out.terms[0].plan.root.to_string();
        // The Other select wraps the join result (outermost of the term).
        assert!(root.trim_start().starts_with("SELECT("), "{root}");
        assert!(root.contains("v.lbweight() > 3000"), "{root}");
    }

    #[test]
    fn clause_order_follows_figure_7_1() {
        let stats = DatabaseStats::paper_example();
        let mut q = QuerySpec::new("e", "VehicleEngine");
        q.projection = vec!["e.size".into()];
        q.group_by = vec!["e.cylinders".into()];
        q.having = Some("count > 3".into());
        q.order_by = vec!["e.size".into()];
        q.terms = vec![vec![PredSpec::Immediate {
            attribute: "cylinders".into(),
            theta: Theta::Gt,
            constant: Const::Num(4.0),
        }]];
        let out = optimize(&q, &stats, &cfg());
        // SORT(PROJECT(PARTITION(SELECT(...)))) — FROM→WHERE→GROUP
        // BY/HAVING→projection→ORDER BY.
        let Plan::Sort { input, .. } = &out.root else {
            panic!("outermost is SORT")
        };
        let Plan::Project { input, .. } = &**input else {
            panic!("then PROJECT")
        };
        let Plan::Partition { having, .. } = &**input else {
            panic!("then PARTITION")
        };
        assert_eq!(having.as_deref(), Some("count > 3"));
    }

    #[test]
    fn short_var_follows_paper_convention() {
        assert_eq!(short_var("drivetrain", &[]), "d");
        assert_eq!(short_var("engine", &[]), "e");
        assert_eq!(short_var("company", &[]), "c");
        assert_eq!(short_var("company", &["c".into()]), "c2");
    }
}
