//! MOODSQL abstract syntax.

use mood_datamodel::TypeDescriptor;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `EXPLAIN SELECT …` — optimize only, return the plan text.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT …` — execute with per-operator
    /// instrumentation, return the estimate-vs-actual report.
    ExplainAnalyze(SelectStmt),
    /// `SHOW METRICS` — dump the engine-wide metrics registry.
    ShowMetrics,
    CreateClass(CreateClass),
    DropClass(String),
    /// `new Employee <'Budak Arpinar', 'Computer Engineer', 1969>` —
    /// positional values in attribute order (the MoodView protocol of
    /// Section 9.4).
    NewObject {
        class: String,
        values: Vec<Lit>,
    },
    CreateIndex {
        class: String,
        attribute: String,
        unique: bool,
        hash: bool,
    },
    /// `DEFINE METHOD Class::name(p Type, …) RETURNS Type AS '…body…'`.
    DefineMethod {
        class: String,
        name: String,
        params: Vec<(String, TypeDescriptor)>,
        returns: TypeDescriptor,
        body: String,
    },
    DropMethod {
        class: String,
        name: String,
    },
    /// `DELETE FROM Class v [WHERE …]`.
    Delete {
        class: String,
        var: String,
        where_clause: Option<Expr>,
    },
    /// `UPDATE Class v SET a = expr, … [WHERE …]`.
    Update {
        class: String,
        var: String,
        assignments: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    /// `BEGIN [TRANSACTION]` — open an explicit transaction; statements
    /// until COMMIT/ROLLBACK share one atomic unit.
    Begin,
    /// `COMMIT` — make the open transaction's effects durable.
    Commit,
    /// `ROLLBACK` — undo the open transaction's effects.
    Rollback,
}

/// `CREATE CLASS` definition (Section 3.1's DDL).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateClass {
    pub name: String,
    pub attributes: Vec<(String, TypeDescriptor)>,
    pub methods: Vec<MethodDecl>,
    pub inherits: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    pub name: String,
    pub params: Vec<(String, TypeDescriptor)>,
    pub returns: TypeDescriptor,
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<Expr>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<PathRef>,
    pub having: Option<Expr>,
    pub order_by: Vec<(PathRef, bool)>, // (path, ascending)
}

/// One FROM-clause item: `[EVERY] Class [- Sub - Sub2] var`.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub class: String,
    pub every: bool,
    pub minus: Vec<String>,
    pub var: String,
}

/// `var.seg1.seg2…` — a path rooted at a range variable.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRef {
    pub var: String,
    pub segments: Vec<String>,
}

impl PathRef {
    pub fn render(&self) -> String {
        if self.segments.is_empty() {
            self.var.clone()
        } else {
            format!("{}.{}", self.var, self.segments.join("."))
        }
    }
}

/// Aggregate functions (GROUP BY support).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    pub fn to_theta(self) -> mood_cost::Theta {
        match self {
            CmpOp::Eq => mood_cost::Theta::Eq,
            CmpOp::Ne => mood_cost::Theta::Ne,
            CmpOp::Lt => mood_cost::Theta::Lt,
            CmpOp::Le => mood_cost::Theta::Le,
            CmpOp::Gt => mood_cost::Theta::Gt,
            CmpOp::Ge => mood_cost::Theta::Ge,
        }
    }
}

/// Expressions (projections, predicates, arguments).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Path(PathRef),
    /// `base.method(args…)` — `base` may be just a variable.
    MethodCall {
        base: PathRef,
        method: String,
        args: Vec<Expr>,
    },
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
    Literal(Lit),
    Compare {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Arith {
        op: char,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

impl Expr {
    /// Render back to (canonical) MOODSQL text — used for dictionary rows
    /// and plan labels.
    pub fn render(&self) -> String {
        match self {
            Expr::Path(p) => p.render(),
            Expr::MethodCall { base, method, args } => {
                let args: Vec<String> = args.iter().map(Expr::render).collect();
                if base.segments.is_empty() {
                    format!("{}.{method}({})", base.var, args.join(", "))
                } else {
                    format!("{}.{method}({})", base.render(), args.join(", "))
                }
            }
            Expr::Agg { func, arg } => match arg {
                Some(a) => format!("{}({})", func.name(), a.render()),
                None => format!("{}(*)", func.name()),
            },
            Expr::Literal(Lit::Int(i)) => i.to_string(),
            Expr::Literal(Lit::Float(x)) => x.to_string(),
            Expr::Literal(Lit::Str(s)) => format!("'{s}'"),
            Expr::Literal(Lit::Bool(b)) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Expr::Literal(Lit::Null) => "NULL".to_string(),
            Expr::Compare { op, left, right } => {
                format!("{} {} {}", left.render(), op.symbol(), right.render())
            }
            Expr::Between { expr, lo, hi } => {
                format!(
                    "{} BETWEEN {} AND {}",
                    expr.render(),
                    lo.render(),
                    hi.render()
                )
            }
            Expr::And(parts) => {
                let ps: Vec<String> = parts.iter().map(Expr::render).collect();
                ps.join(" AND ")
            }
            Expr::Or(parts) => {
                let ps: Vec<String> = parts.iter().map(Expr::render).collect();
                format!("({})", ps.join(" OR "))
            }
            Expr::Not(inner) => format!("NOT ({})", inner.render()),
            Expr::Arith { op, left, right } => {
                format!("{} {op} {}", left.render(), right.render())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_render() {
        let p = PathRef {
            var: "v".into(),
            segments: vec!["drivetrain".into(), "engine".into()],
        };
        assert_eq!(p.render(), "v.drivetrain.engine");
        let bare = PathRef {
            var: "v".into(),
            segments: vec![],
        };
        assert_eq!(bare.render(), "v");
    }

    #[test]
    fn expr_render_roundtrips_shapes() {
        let e = Expr::Compare {
            op: CmpOp::Eq,
            left: Box::new(Expr::Path(PathRef {
                var: "c".into(),
                segments: vec!["name".into()],
            })),
            right: Box::new(Expr::Literal(Lit::Str("BMW".into()))),
        };
        assert_eq!(e.render(), "c.name = 'BMW'");
        let agg = Expr::Agg {
            func: AggFunc::Count,
            arg: None,
        };
        assert_eq!(agg.render(), "COUNT(*)");
    }

    #[test]
    fn agg_parse() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }
}
