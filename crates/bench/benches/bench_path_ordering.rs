//! X4 + ablation 1 — Algorithm 8.1 (F/(1−s)) against simpler heuristics
//! and the exhaustive optimum, at the model level (objective f) and as
//! planning-time criterion benchmarks; plus a measured end-to-end run of
//! the Example 8.1 query shape on a generated database.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mood_bench::{build_vehicle_db, VehicleDbSpec};
use mood_core::optimizer::{objective, optimal_order_exhaustive, order_paths, PathCost};

fn rand_paths(n: usize, seed: u64) -> Vec<PathCost> {
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|_| PathCost {
            cost: 1.0 + rnd() * 999.0,
            selectivity: rnd().clamp(0.001, 0.999),
        })
        .collect()
}

fn order_by_selectivity(paths: &[PathCost]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..paths.len()).collect();
    idx.sort_by(|&a, &b| {
        paths[a]
            .selectivity
            .partial_cmp(&paths[b].selectivity)
            .unwrap()
    });
    idx
}

fn order_by_cost(paths: &[PathCost]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..paths.len()).collect();
    idx.sort_by(|&a, &b| paths[a].cost.partial_cmp(&paths[b].cost).unwrap());
    idx
}

fn bench(c: &mut Criterion) {
    // Ablation table: objective ratio vs the exhaustive optimum, averaged
    // over 200 random instances per m.
    println!("\n# X4: objective f relative to the exhaustive optimum (1.0 = optimal)");
    println!(
        "{:>3} {:>12} {:>16} {:>12}",
        "m", "F/(1-s)", "selectivity-only", "cost-only"
    );
    for m in [3usize, 5, 7] {
        let (mut r_rank, mut r_sel, mut r_cost) = (0.0, 0.0, 0.0);
        let trials = 200;
        for t in 0..trials {
            let paths = rand_paths(m, 1000 * m as u64 + t);
            let (_, best) = optimal_order_exhaustive(&paths);
            r_rank += objective(&paths, &order_paths(&paths)) / best;
            r_sel += objective(&paths, &order_by_selectivity(&paths)) / best;
            r_cost += objective(&paths, &order_by_cost(&paths)) / best;
        }
        let n = trials as f64;
        println!(
            "{:>3} {:>12.4} {:>16.4} {:>12.4}",
            m,
            r_rank / n,
            r_sel / n,
            r_cost / n
        );
    }

    // Planning-time: the rank sort vs factorial search.
    let mut group = c.benchmark_group("path_ordering");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for m in [4usize, 8] {
        let paths = rand_paths(m, 99);
        group.bench_with_input(BenchmarkId::new("rank_sort", m), &paths, |b, p| {
            b.iter(|| order_paths(p))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", m), &paths, |b, p| {
            b.iter(|| optimal_order_exhaustive(p).1)
        });
    }
    group.finish();

    // Measured end-to-end: the Example 8.1-shaped query through the whole
    // pipeline on a generated database (the optimizer's order in effect).
    let db = build_vehicle_db(&VehicleDbSpec::default());
    let mut group = c.benchmark_group("example_8_1_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("two_path_query", |b| {
        b.iter(|| {
            db.query(
                "SELECT v FROM Vehicle v WHERE v.company.name = 'Company00000' \
                 AND v.drivetrain.engine.cylinders = 2",
            )
            .expect("query runs")
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
