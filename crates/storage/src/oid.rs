//! Object identifiers.
//!
//! MOOD, following ESM, uses *physical* OIDs: an object identifier encodes
//! the file, page and slot where the object lives, plus a `unique` stamp that
//! detects stale references after a slot is reused. Relocated objects leave a
//! forwarding address behind (see [`crate::heap`]), so OIDs stay valid across
//! in-place growth.

use std::fmt;

/// Identifier of a storage file (an extent, an index, the catalog, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Page number within a file (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Slot number within a slotted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u16);

/// A physical object identifier.
///
/// Ordering is by (file, page, slot, unique); scanning OIDs in order visits a
/// file sequentially, which the algebra layer relies on when it chooses
/// between sequential and random access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    pub file: FileId,
    pub page: PageId,
    pub slot: SlotId,
    /// Reuse stamp: bumped every time the slot is re-allocated so that stale
    /// OIDs are detected instead of silently resolving to the wrong object.
    pub unique: u32,
}

impl Oid {
    pub const fn new(file: FileId, page: PageId, slot: SlotId, unique: u32) -> Self {
        Oid {
            file,
            page,
            slot,
            unique,
        }
    }

    /// The all-zero OID used as a null reference in serialized values.
    pub const NULL: Oid = Oid::new(FileId(0), PageId(0), SlotId(0), 0);

    pub fn is_null(&self) -> bool {
        *self == Oid::NULL
    }

    /// Serialize to a fixed 14-byte representation (used inside values and
    /// index payloads).
    pub fn to_bytes(&self) -> [u8; 14] {
        let mut b = [0u8; 14];
        b[0..4].copy_from_slice(&self.file.0.to_le_bytes());
        b[4..8].copy_from_slice(&self.page.0.to_le_bytes());
        b[8..10].copy_from_slice(&self.slot.0.to_le_bytes());
        b[10..14].copy_from_slice(&self.unique.to_le_bytes());
        b
    }

    pub fn from_bytes(b: &[u8]) -> Option<Oid> {
        if b.len() < 14 {
            return None;
        }
        Some(Oid {
            file: FileId(u32::from_le_bytes(b[0..4].try_into().ok()?)),
            page: PageId(u32::from_le_bytes(b[4..8].try_into().ok()?)),
            slot: SlotId(u16::from_le_bytes(b[8..10].try_into().ok()?)),
            unique: u32::from_le_bytes(b[10..14].try_into().ok()?),
        })
    }

    pub const ENCODED_LEN: usize = 14;
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}#{}",
            self.file.0, self.page.0, self.slot.0, self.unique
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let oid = Oid::new(FileId(7), PageId(123456), SlotId(42), 99);
        let b = oid.to_bytes();
        assert_eq!(Oid::from_bytes(&b), Some(oid));
    }

    #[test]
    fn from_bytes_rejects_short_input() {
        assert_eq!(Oid::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn null_oid_detected() {
        assert!(Oid::NULL.is_null());
        assert!(!Oid::new(FileId(1), PageId(0), SlotId(0), 0).is_null());
    }

    #[test]
    fn ordering_is_file_page_slot() {
        let a = Oid::new(FileId(1), PageId(2), SlotId(3), 0);
        let b = Oid::new(FileId(1), PageId(3), SlotId(0), 0);
        let c = Oid::new(FileId(2), PageId(0), SlotId(0), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_format() {
        let oid = Oid::new(FileId(1), PageId(2), SlotId(3), 4);
        assert_eq!(oid.to_string(), "1:2:3#4");
    }
}
