//! Cost of basic file operations — Section 5 verbatim.
//!
//! All costs are in seconds under a [`PhysicalParams`] disk model:
//!
//! * `SEQCOST(b) = s + r + b·ebt`
//! * `RNDCOST(b) = b·(s + r + btt)`
//! * `INDCOST(k)` — expected page reads to fetch OIDs for `k` random keys
//!   from a B+-tree, level by level through `c(n_i, m_i, r_i)`;
//! * `RNGXCOST(fract) = fract · leaves(I) · (s + r + btt)`.

use mood_storage::PhysicalParams;

use crate::approx::c_approx;

/// The Table 9 parameters of a B+-tree index the cost model consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// `v(I)` — order of the tree.
    pub order: f64,
    /// `level(I)` — number of levels.
    pub levels: u32,
    /// `leaves(I)` — number of leaf pages.
    pub leaves: f64,
    /// `keysize(I)` in bytes.
    pub keysize: u32,
    /// `unique(I)`.
    pub unique: bool,
}

impl IndexParams {
    /// Derive from measured storage-layer statistics.
    pub fn from_stats(s: &mood_storage::BTreeStats) -> IndexParams {
        IndexParams {
            order: s.order as f64,
            levels: s.levels,
            leaves: s.leaves as f64,
            keysize: s.keysize,
            unique: s.unique,
        }
    }
}

/// `SEQCOST(b)` — sequential access to `b` pages.
pub fn seqcost(p: &PhysicalParams, b: f64) -> f64 {
    p.seq_cost(b)
}

/// `RNDCOST(b)` — random access to `b` pages.
pub fn rndcost(p: &PhysicalParams, b: f64) -> f64 {
    p.rnd_cost(b)
}

/// `SEQCOST` under a readahead window of `k` pages: the storage layer
/// issues `⌈b/k⌉` contiguous batch reads, each paying one positioning
/// delay, instead of the single `s + r` the classic formula assumes for a
/// perfectly unbroken sweep. `seqcost_batched(b, k) = ⌈b/k⌉·(s + r) +
/// b·ebt`; with `k ≥ b` it degenerates to `SEQCOST(b)`.
pub fn seqcost_batched(p: &PhysicalParams, b: f64, k: u32) -> f64 {
    p.seq_cost_batched(b, k)
}

/// `INDCOST(k)` — cost of fetching the OIDs for `k` random keys through a
/// secondary B+-tree index.
///
/// Per the paper: `Σ_{i=1}^{level} ⌈c(n_i, m_i, r_i)⌉ · RNDCOST(1)` with
/// `n_i = leaves/(2v·ln2)^{i-2}`, `m_i = leaves/(2v·ln2)^{i-1}`,
/// `r_1 = k`, `r_i = c(n_{i-1}, m_{i-1}, r_{i-1})`.
pub fn indcost(p: &PhysicalParams, index: &IndexParams, k: f64) -> f64 {
    if k <= 0.0 {
        return 0.0;
    }
    let fan = 2.0 * index.order * std::f64::consts::LN_2;
    let mut pages = 0.0f64;
    let mut r = k;
    for i in 1..=index.levels {
        let n_i = index.leaves / fan.powi(i as i32 - 2);
        let m_i = (index.leaves / fan.powi(i as i32 - 1)).max(1.0);
        let touched = c_approx(n_i, m_i, r).max(1.0);
        pages += touched.ceil();
        r = touched;
    }
    pages * p.rnd_cost(1.0)
}

/// `RNGXCOST(fract)` — cost of a range query covering fraction `fract` of
/// the key domain.
pub fn rngxcost(p: &PhysicalParams, index: &IndexParams, fract: f64) -> f64 {
    fract.clamp(0.0, 1.0) * index.leaves * p.rnd_cost(1.0)
}

/// `nbpg` — expected number of pages of a `pages`-page class touched when
/// `k` of its objects are accessed: `nbpages·(1 − (1 − 1/nbpages)^k)`
/// (the Cardenas form the paper uses inside `ftc` and `hhc`).
pub fn pages_touched(pages: f64, k: f64) -> f64 {
    if pages <= 0.0 || k <= 0.0 {
        return 0.0;
    }
    pages * (1.0 - (1.0 - 1.0 / pages).powf(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> PhysicalParams {
        PhysicalParams::salzberg_1988()
    }

    fn index() -> IndexParams {
        IndexParams {
            order: 100.0,
            levels: 3,
            leaves: 5_000.0,
            keysize: 8,
            unique: true,
        }
    }

    #[test]
    fn seqcost_batched_interpolates_between_seq_and_rnd() {
        let p = disk();
        let b = 1_000.0;
        // Window >= b: identical to the unbroken sweep.
        assert!((seqcost_batched(&p, b, 1_000_000) - seqcost(&p, b)).abs() < 1e-9);
        // Window 1: one positioning delay per page — transfer stays ebt,
        // so it still beats RNDCOST (which pays btt per page) or ties.
        let k1 = seqcost_batched(&p, b, 1);
        assert!(k1 >= seqcost(&p, b));
        assert!(k1 <= rndcost(&p, b) + 1e-9);
        // Larger windows are monotonically cheaper.
        assert!(seqcost_batched(&p, b, 8) < seqcost_batched(&p, b, 2));
        // Zero pages cost nothing.
        assert_eq!(seqcost_batched(&p, 0.0, 8), 0.0);
    }

    #[test]
    fn seq_vs_rnd_crossover() {
        let p = disk();
        // For one page they are equal (ebt == btt in this preset)...
        assert!((seqcost(&p, 1.0) - rndcost(&p, 1.0)).abs() < 1e-12);
        // ...for many pages sequential wins by roughly (s+r+btt)/ebt.
        assert!(seqcost(&p, 10_000.0) < rndcost(&p, 10_000.0) / 5.0);
    }

    #[test]
    fn indcost_single_key_reads_about_level_pages() {
        let p = disk();
        let ix = index();
        let cost = indcost(&p, &ix, 1.0);
        let per_page = p.rnd_cost(1.0);
        let pages = cost / per_page;
        assert!(
            (pages - ix.levels as f64).abs() <= 1.0,
            "one key descends ≈level pages, got {pages}"
        );
    }

    #[test]
    fn indcost_grows_sublinearly_then_saturates() {
        let p = disk();
        let ix = index();
        let c1 = indcost(&p, &ix, 10.0);
        let c2 = indcost(&p, &ix, 1_000.0);
        let c3 = indcost(&p, &ix, 1_000_000.0);
        let c4 = indcost(&p, &ix, 10_000_000.0);
        assert!(c1 < c2 && c2 < c3);
        // Beyond every leaf being touched, cost saturates.
        assert!((c4 - c3) / c3 < 0.01, "saturated: {c3} vs {c4}");
    }

    #[test]
    fn indcost_zero_keys_is_free() {
        assert_eq!(indcost(&disk(), &index(), 0.0), 0.0);
    }

    #[test]
    fn rngxcost_proportional_to_fraction() {
        let p = disk();
        let ix = index();
        let half = rngxcost(&p, &ix, 0.5);
        let full = rngxcost(&p, &ix, 1.0);
        assert!((half * 2.0 - full).abs() < 1e-9);
        // And clamps out-of-range fractions.
        assert_eq!(rngxcost(&p, &ix, 1.5), full);
        assert_eq!(rngxcost(&p, &ix, -0.1), 0.0);
    }

    #[test]
    fn full_range_scan_costs_all_leaves() {
        let p = disk();
        let ix = index();
        assert!((rngxcost(&p, &ix, 1.0) - ix.leaves * p.rnd_cost(1.0)).abs() < 1e-9);
    }

    #[test]
    fn pages_touched_limits() {
        // One access touches one page.
        assert!((pages_touched(100.0, 1.0) - 1.0).abs() < 0.01);
        // Many accesses touch all pages.
        assert!((pages_touched(100.0, 100_000.0) - 100.0).abs() < 1e-6);
        // Monotone.
        assert!(pages_touched(100.0, 10.0) < pages_touched(100.0, 50.0));
        assert_eq!(pages_touched(0.0, 10.0), 0.0);
    }

    #[test]
    fn paper_nbpg_for_vehicle() {
        // nbpg_c = 2000·(1−(1−1/2000)^20000) ≈ 1999.9 (Section 6.1 with
        // Table 13 numbers): effectively every Vehicle page.
        let v = pages_touched(2_000.0, 20_000.0);
        assert!(v > 1_999.0 && v < 2_000.0, "{v}");
    }
}
