//! Golden tests pinning the MOOD Algebra return-type rules of Tables 1–7
//! (Section 4 of the paper). Every cell of every table is asserted both
//! against the pure rule functions in `collection.rs` and — where the
//! operator is implemented over real collections — against the operator's
//! observed behavior. A change to any table cell fails here first.

use std::sync::Arc;

use mood_algebra::{
    as_extent_return, as_set_list_elements, difference, dup_elim, dupelim_return, intersection,
    join, join_return, select, select_return, setop_return, union, unnest, unnest_accepts,
    Collection, JoinMethod, JoinRhs, Kind, Obj,
};
use mood_catalog::{Catalog, ClassBuilder};
use mood_datamodel::{TypeDescriptor, Value};
use mood_storage::{Oid, StorageManager};

const ALL_KINDS: [Kind; 4] = [Kind::Extent, Kind::Set, Kind::List, Kind::NamedObject];

fn fixture() -> (Arc<Catalog>, Vec<Oid>, Vec<Oid>) {
    let sm = Arc::new(StorageManager::in_memory());
    let cat = Arc::new(Catalog::create(sm).unwrap());
    cat.define_class(ClassBuilder::class("D").attribute("id", TypeDescriptor::integer()))
        .unwrap();
    cat.define_class(
        ClassBuilder::class("C")
            .attribute("id", TypeDescriptor::integer())
            .attribute("d", TypeDescriptor::reference("D")),
    )
    .unwrap();
    cat.create_index("C", "d", mood_catalog::IndexKind::BTree, false)
        .unwrap();
    let d_oids: Vec<Oid> = (0..3)
        .map(|i| {
            cat.new_object("D", Value::tuple(vec![("id", Value::Integer(i))]))
                .unwrap()
        })
        .collect();
    let c_oids: Vec<Oid> = (0..6)
        .map(|i| {
            cat.new_object(
                "C",
                Value::tuple(vec![
                    ("id", Value::Integer(i)),
                    ("d", Value::Ref(d_oids[i as usize % 3])),
                ]),
            )
            .unwrap()
        })
        .collect();
    (cat, c_oids, d_oids)
}

fn extent_of(cat: &Catalog, oids: &[Oid]) -> Collection {
    Collection::Extent(
        oids.iter()
            .map(|&oid| {
                let (_, v) = cat.get_object(oid).unwrap();
                Obj::stored(oid, v)
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Table 1 — Select returns its argument's kind.
// ---------------------------------------------------------------------

#[test]
fn table_1_select_return_rule() {
    for kind in ALL_KINDS {
        assert_eq!(select_return(kind), kind, "Table 1 row {kind}");
    }
}

#[test]
fn table_1_select_behavior_matches_rule() {
    let (cat, c_oids, _) = fixture();
    let inputs = [
        extent_of(&cat, &c_oids),
        Collection::set_from(c_oids.clone()),
        Collection::List(c_oids.clone()),
    ];
    for arg in &inputs {
        let out = select(&cat, arg, &|_| Ok(true)).unwrap();
        assert_eq!(
            out.kind(),
            arg.kind(),
            "Select({}) must return its argument kind",
            arg.kind().unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// Table 2 — Join: the "widest" argument wins (Extent > Set > List >
// NamedObject). The full 4×4 grid, cell by cell.
// ---------------------------------------------------------------------

#[test]
fn table_2_join_return_grid() {
    use Kind::*;
    let grid: [(Kind, Kind, Kind); 16] = [
        (Extent, Extent, Extent),
        (Extent, Set, Extent),
        (Extent, List, Extent),
        (Extent, NamedObject, Extent),
        (Set, Extent, Extent),
        (Set, Set, Set),
        (Set, List, Set),
        (Set, NamedObject, Set),
        (List, Extent, Extent),
        (List, Set, Set),
        (List, List, List),
        (List, NamedObject, List),
        (NamedObject, Extent, Extent),
        (NamedObject, Set, Set),
        (NamedObject, List, List),
        (NamedObject, NamedObject, NamedObject),
    ];
    for (a, b, want) in grid {
        assert_eq!(join_return(a, b), want, "Table 2 cell ({a}, {b})");
    }
}

#[test]
fn table_2_join_pairs_one_per_reference() {
    let (cat, c_oids, _) = fixture();
    let left = extent_of(&cat, &c_oids);
    for method in JoinMethod::ALL {
        let pairs = join(&cat, &left, "d", JoinRhs::Class("D"), method).unwrap();
        assert_eq!(pairs.len(), c_oids.len(), "{method:?}: one pair per C");
    }
}

// ---------------------------------------------------------------------
// Table 3 — DupElim: Set not applicable; List → ordered distinct OIDs;
// Extent → distinct by deep equality.
// ---------------------------------------------------------------------

#[test]
fn table_3_dupelim_rule() {
    assert_eq!(dupelim_return(Kind::Set), None, "Table 3: Set n/a");
    assert_eq!(dupelim_return(Kind::NamedObject), None);
    assert_eq!(
        dupelim_return(Kind::List),
        Some("list of ordered distinct object identifiers")
    );
    assert_eq!(
        dupelim_return(Kind::Extent),
        Some("Extent of the distinct object according to the deep equality check")
    );
}

#[test]
fn table_3_dupelim_behavior_matches_rule() {
    let (cat, c_oids, _) = fixture();
    // Set: not applicable.
    assert!(dup_elim(&cat, &Collection::set_from(c_oids.clone())).is_err());
    // List: ordered distinct OIDs.
    let dupes = vec![c_oids[2], c_oids[0], c_oids[2], c_oids[1], c_oids[0]];
    let out = dup_elim(&cat, &Collection::List(dupes)).unwrap();
    let mut want = vec![c_oids[0], c_oids[1], c_oids[2]];
    want.sort();
    assert_eq!(out, Collection::List(want));
    // Extent: deep equality collapses distinct objects with equal state.
    let twice = [&c_oids[..], &c_oids[..]].concat();
    let out = dup_elim(&cat, &extent_of(&cat, &twice)).unwrap();
    assert_eq!(out.kind(), Some(Kind::Extent));
    assert_eq!(out.len(), c_oids.len(), "duplicate OIDs collapse");
}

// ---------------------------------------------------------------------
// Table 4 — set operators take sets/lists; list op list stays a list.
// ---------------------------------------------------------------------

#[test]
fn table_4_setop_return_grid() {
    use Kind::*;
    for (a, b, want) in [
        (Set, Set, Some(Set)),
        (Set, List, Some(Set)),
        (List, Set, Some(Set)),
        (List, List, Some(List)),
    ] {
        assert_eq!(setop_return(a, b), want, "Table 4 cell ({a}, {b})");
    }
    // Extents and named objects are not set-operator arguments.
    for k in ALL_KINDS {
        assert_eq!(setop_return(Extent, k), None);
        assert_eq!(setop_return(k, NamedObject), None);
    }
}

#[test]
fn table_4_setop_behavior_matches_rule() {
    let (_cat, c_oids, _) = fixture();
    let s = Collection::set_from(c_oids[..4].to_vec());
    let l = Collection::List(c_oids[2..].to_vec());
    for op in [union, intersection, difference] {
        assert_eq!(op(&s, &s).unwrap().kind(), Some(Kind::Set), "Set op Set");
        assert_eq!(op(&s, &l).unwrap().kind(), Some(Kind::Set), "Set op List");
        assert_eq!(op(&l, &s).unwrap().kind(), Some(Kind::Set), "List op Set");
    }
    // List ∪ List is concatenation (array semantics), staying a list.
    let u = union(&l, &l).unwrap();
    assert_eq!(u.kind(), Some(Kind::List));
    assert_eq!(u.len(), 2 * l.len(), "list union concatenates");
}

// ---------------------------------------------------------------------
// Tables 5 and 6 — asSet/asList element descriptions and asExtent.
// ---------------------------------------------------------------------

#[test]
fn table_5_as_set_list_elements() {
    assert_eq!(
        as_set_list_elements(Kind::Extent),
        "Object identifiers of the objects in the extent arg"
    );
    assert_eq!(
        as_set_list_elements(Kind::Set),
        "Object identifiers of the set arg"
    );
    assert_eq!(
        as_set_list_elements(Kind::List),
        "Object identifiers of the list arg"
    );
    assert_eq!(
        as_set_list_elements(Kind::NamedObject),
        "Object identifiers of the named object"
    );
}

#[test]
fn table_6_as_extent_return() {
    let want = "extent of dereferenced objects of the elements of the collection";
    assert_eq!(as_extent_return(Kind::Set), Some(want));
    assert_eq!(as_extent_return(Kind::List), Some(want));
    assert_eq!(as_extent_return(Kind::Extent), None, "already an extent");
    assert_eq!(as_extent_return(Kind::NamedObject), None);
}

// ---------------------------------------------------------------------
// Table 7 — Unnest accepts every collection kind and returns an Extent.
// ---------------------------------------------------------------------

#[test]
fn table_7_unnest_rule_and_behavior() {
    for kind in ALL_KINDS {
        assert!(unnest_accepts(kind), "Table 7 row {kind}");
    }
    let (cat, _, _) = fixture();
    let nested = Collection::Extent(vec![Obj::transient(Value::tuple(vec![
        ("head", Value::Integer(1)),
        (
            "tail",
            Value::Set(vec![Value::Integer(10), Value::Integer(20)]),
        ),
    ]))]);
    let flat = unnest(&cat, &nested, "tail").unwrap();
    assert_eq!(flat.kind(), Some(Kind::Extent), "Unnest returns an Extent");
    assert_eq!(flat.len(), 2);
}
