//! `mood` — an interactive MOODSQL shell over a MOOD database.
//!
//! ```sh
//! cargo run -p mood-core --bin mood                 # in-memory session
//! cargo run -p mood-core --bin mood -- /path/to/db  # persistent database
//! echo "SELECT e FROM Employee e" | mood /path/to/db
//! ```
//!
//! Statements end with `;` (or end-of-line for single-line input). Shell
//! commands: `.help`, `.classes`, `.schema [Class]`, `.hierarchy`,
//! `.stats`, `.trace`, `.spans`, `.metrics`, `.quit`.

use std::io::{BufRead, Write};

use mood_core::{Answer, Mood, RingBuffer};

fn main() {
    let arg = std::env::args().nth(1);
    let db = match &arg {
        Some(path) => match Mood::open(path) {
            Ok(db) => {
                eprintln!("opened database at {path}");
                db
            }
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("in-memory database (pass a directory for persistence)");
            Mood::in_memory()
        }
    };

    // Keep the last few hundred query-lifecycle spans for `.spans`.
    let spans = RingBuffer::new(256);
    db.tracer().subscribe(spans.clone());

    let stdin = std::io::stdin();
    let interactive = is_tty();
    let mut buffer = String::new();
    if interactive {
        prompt(&buffer);
    }
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell_command(&db, &spans, trimmed) {
                break;
            }
            if interactive {
                prompt(&buffer);
            }
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute on `;` or, for convenience, on any non-continuation line
        // that parses as a complete statement.
        let ready = trimmed.ends_with(';')
            || (!trimmed.is_empty() && mood_core::sql::parse(&buffer).is_ok());
        if ready {
            let stmt = std::mem::take(&mut buffer);
            run(&db, stmt.trim());
        }
        if interactive {
            prompt(&buffer);
        }
    }
    if !buffer.trim().is_empty() {
        run(&db, buffer.trim());
    }
    let _ = db.checkpoint();
}

fn is_tty() -> bool {
    // Conservative: honor an env override, otherwise assume non-interactive
    // when piped (std::io::IsTerminal is stable).
    use std::io::IsTerminal;
    std::io::stdin().is_terminal()
}

fn prompt(buffer: &str) {
    if buffer.is_empty() {
        eprint!("mood> ");
    } else {
        eprint!("  ..> ");
    }
    let _ = std::io::stderr().flush();
}

fn run(db: &Mood, sql: &str) {
    if sql.is_empty() {
        return;
    }
    match db.execute(sql) {
        Ok(Answer::Rows(r)) => {
            if !r.columns.is_empty() {
                println!("{}", r.columns.join(" | "));
                println!("{}", "-".repeat(r.columns.join(" | ").len().max(8)));
            }
            let n = r.rows.len();
            for row in &r.rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(" | "));
            }
            println!("({n} row{})", if n == 1 { "" } else { "s" });
        }
        Ok(Answer::Plan(p)) => print!("{p}"),
        Ok(Answer::Created(v)) => println!("created {v}"),
        Ok(Answer::Done { affected }) => println!("ok ({affected} affected)"),
        Err(e) => eprintln!("error: {e}"),
    }
}

fn shell_command(db: &Mood, spans: &RingBuffer, cmd: &str) -> bool {
    let mut parts = cmd.splitn(2, ' ');
    match parts.next().unwrap_or("") {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                ".classes            list classes\n\
                 .schema <Class>     class presentation card\n\
                 .hierarchy          ASCII class hierarchy\n\
                 .dot                Graphviz DOT of the hierarchy\n\
                 .stats              collect and show Table 8 statistics\n\
                 .trace              stage trace of the last SELECT\n\
                 .spans              recent query-lifecycle spans\n\
                 .metrics            engine-wide metrics registry\n\
                 .quit               leave\n\
                 Any other input is MOODSQL (end statements with ';')."
            );
        }
        ".classes" => {
            for c in db.catalog().class_names() {
                println!("{c}");
            }
        }
        ".schema" => match parts.next() {
            Some(class) => match db.render_class(class.trim()) {
                Ok(card) => print!("{card}"),
                Err(e) => eprintln!("error: {e}"),
            },
            None => eprintln!("usage: .schema <Class>"),
        },
        ".hierarchy" => print!("{}", db.render_hierarchy()),
        ".dot" => print!("{}", db.render_hierarchy_dot()),
        ".stats" => match db.collect_stats() {
            Ok(stats) => {
                for (class, s) in stats.classes() {
                    println!(
                        "{class}: |C|={} nbpages={} size={}B",
                        s.cardinality, s.nbpages, s.size
                    );
                }
            }
            Err(e) => eprintln!("error: {e}"),
        },
        ".trace" => println!("{}", db.last_trace().join(" -> ")),
        ".spans" => {
            for r in spans.records() {
                println!("{}", mood_core::trace::render_span(&r));
            }
        }
        ".metrics" => {
            for (k, v) in db.engine_metrics().rows() {
                println!("{k} = {v}");
            }
        }
        other => eprintln!("unknown command {other}; try .help"),
    }
    true
}
