//! Parallel execution must not change what the cost model prices: the
//! hash-partition join performs the same page accesses at every
//! parallelism level, and the per-thread metric counters always sum to
//! the totals the §5/§6 formulas are compared against.

use mood_bench::{build_ref_db, RefDbSpec};
use mood_core::algebra::{join_par, Collection, ExecutionConfig, JoinMethod, JoinRhs, Obj};

fn run_join_at(parallelism: usize) -> (usize, u64, u64, u64) {
    // A fresh database per level (same seed) gives every run an identical
    // buffer-pool starting state, so access totals are directly comparable.
    // The pool holds the working set: under capacity pressure the pool's
    // eviction order — not the operator's access pattern — decides which
    // accesses are physical, and worker interleaving could shift a miss or
    // two. With no evictions each distinct page faults exactly once, so
    // equal totals demonstrate the operator-level invariant.
    let spec = RefDbSpec {
        n_c: 400,
        n_d: 200,
        pool_frames: 64,
        ..Default::default()
    };
    let (db, c_oids, _) = build_ref_db(&spec);
    let catalog = db.catalog();
    let left = Collection::Extent(
        c_oids
            .iter()
            .map(|&oid| {
                let (_, v) = catalog.get_object(oid).unwrap();
                Obj::stored(oid, v)
            })
            .collect::<Vec<_>>(),
    );
    let metrics = db.metrics();
    metrics.reset();
    let before = metrics.snapshot();
    let pairs = join_par(
        catalog,
        &left,
        "d",
        JoinRhs::Class("D"),
        JoinMethod::HashPartition,
        ExecutionConfig::with_parallelism(parallelism),
    )
    .unwrap();
    let delta = metrics.snapshot().delta(&before);

    // Per-thread counters are an exact decomposition of the totals.
    let snap = metrics.snapshot();
    let per_thread = metrics.per_thread_snapshot();
    let read_sum: u64 = per_thread
        .iter()
        .map(|(_, s)| s.seq_pages + s.rnd_pages + s.idx_pages)
        .sum();
    assert_eq!(
        read_sum,
        snap.seq_pages + snap.rnd_pages + snap.idx_pages,
        "per-thread counters must sum to the totals (parallelism {parallelism})"
    );
    if parallelism > 1 && read_sum > 0 {
        assert!(
            per_thread.len() > 1,
            "parallel run should record reads from more than one thread"
        );
    }

    (pairs.len(), delta.seq_pages, delta.rnd_pages, delta.idx_pages)
}

#[test]
fn hash_partition_page_totals_invariant_under_parallelism() {
    let baseline = run_join_at(1);
    assert!(baseline.0 > 0, "join produced pairs");
    for parallelism in [2usize, 4, 8] {
        let run = run_join_at(parallelism);
        assert_eq!(
            run, baseline,
            "pairs/seq/rnd/idx must match sequential at parallelism {parallelism}"
        );
    }
}
