//! # mood-optimizer — the MOOD query optimizer
//!
//! The paper's primary research contribution (Sections 7–8 and the
//! Appendix): cost-based optimization of object-oriented queries built on
//! path expressions.
//!
//! * [`dnf`] — WHERE/HAVING normalization to disjunctive normal form;
//! * [`atomic`] — §8.1 ordering of atomic selections (index-count
//!   inequality + short-circuit residual ordering);
//! * [`path_order`] — Algorithm 8.1: path expressions by `F/(1−s)` (with
//!   the exhaustive baseline for the Appendix lemma);
//! * [`optimizer`] — predicate classification into the ImmSelInfo /
//!   PathSelInfo / OtherSelInfo dictionaries, Algorithm 8.2 (greedy
//!   implicit-join ordering by `jc/(1−js)` over the four join methods),
//!   and access-plan generation;
//! * [`plan`] — plans rendered in the paper's
//!   `JOIN(BIND(...), SELECT(...), HASH_PARTITION, ...)` notation.

pub mod atomic;
pub mod dnf;
pub mod estimate;
pub mod optimizer;
pub mod path_order;
pub mod plan;

pub use atomic::{expected_evaluations, plan_atomic_selections, AtomicPlan, AtomicPredicate};
pub use dnf::{BoolExpr, Negate};
pub use estimate::{estimate_plan_set, NodeEstimate};
pub use optimizer::{
    optimize, short_var, Const, ImmSelRow, OptimizedQuery, OptimizerConfig, OtherSelRow,
    PathSelRow, PredSpec, QuerySpec, TermPlan,
};
pub use path_order::{objective, optimal_order_exhaustive, order_paths, PathCost};
pub use plan::{Plan, PlanSet};
